package replica

import (
	"fmt"
	"time"

	"repro/internal/obs"
)

// Replication instruments. Sync rounds are counted only when a push actually
// happens; idle intervals (no new offers, no epoch change) count as skipped —
// the ratio is the duty cycle of the replication plane. Bytes count the
// encoded generic state frames; legacy flat-sample pushes count entries
// instead (their wire bytes are already visible in dds_wire_bytes_out_total).
var (
	obsSyncRounds    = obs.Default().Counter("dds_replica_sync_rounds_total")
	obsSyncSkipped   = obs.Default().Counter("dds_replica_sync_skipped_total")
	obsSyncBytes     = obs.Default().Counter("dds_replica_sync_bytes_total")
	obsSyncEntries   = obs.Default().Counter("dds_replica_sync_entries_total")
	obsSyncRoundNs   = obs.Default().Histogram("dds_replica_sync_round_ns", obs.ExpBuckets(1000, 4, 12))
	obsDeposedFences = obs.Default().Counter("dds_replica_deposed_fences_total")
	// Lease renewals granted to primaries (quorum of the group acked the
	// round) and rounds where the quorum was missed — each missed round is a
	// lease left to run down, the precursor of a dds_lease_lapses_total tick.
	obsLeaseRenewals = obs.Default().Counter("dds_replica_lease_renewals_total")
	obsLeaseNoQuorum = obs.Default().Counter("dds_replica_lease_noquorum_total")
)

// shardObs builds the per-slot instruments a group feeds: the offer and
// sample-churn counters injected into every member server (the load-watcher
// inputs — see ROADMAP) and the sync-lag gauge tracking the time between
// consecutive successful pushes (the staleness bound replicas actually see).
func shardObs(slot int) (offers, churn *obs.Counter, lag *obs.Gauge) {
	offers = obs.Default().Counter(fmt.Sprintf(`dds_shard_offers_total{slot="%d"}`, slot))
	churn = obs.Default().Counter(fmt.Sprintf(`dds_shard_sample_churn_total{slot="%d"}`, slot))
	lag = obs.Default().Gauge(fmt.Sprintf(`dds_replica_sync_lag_ns{slot="%d"}`, slot))
	return offers, churn, lag
}

func nowNanos() int64 { return time.Now().UnixNano() }
