package replica

import (
	"bytes"
	"encoding/json"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/hashing"
	"repro/internal/netsim"
	"repro/internal/wire"
)

// newGroupServer starts one shard with R replicas and a sync loop slow
// enough that tests control every push via SyncNow.
func newGroupServer(t *testing.T, shards, replicas, sampleSize int) *Server {
	t.Helper()
	srv, err := Listen("127.0.0.1:0", shards, Options{
		Replicas:     replicas,
		SyncInterval: time.Hour, // ticker effectively off; tests call SyncNow
		Codec:        wire.CodecBinary,
	}, func(int, int) netsim.CoordinatorNode {
		return core.NewInfiniteCoordinator(sampleSize)
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = srv.Close() })
	return srv
}

// mustJSON marshals a sample for byte-identity comparison.
func mustJSON(t *testing.T, v any) []byte {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestReplicaCatchesUpInOneFrame is the package's core claim: after any
// amount of primary ingest, a single sync round makes every replica's sample
// byte-identical to the primary's — replicas rebuild from one sketch frame,
// not from a log.
func TestReplicaCatchesUpInOneFrame(t *testing.T) {
	const s = 16
	srv := newGroupServer(t, 1, 2, s)
	hasher := hashing.NewMurmur2(5)

	// Ingest a few thousand keys into the primary only.
	site := core.NewInfiniteSite(0, hasher)
	client, err := wire.DialSiteOptions(site, srv.GroupAddrs()[0][0], wire.Options{Codec: wire.CodecBinary, BatchSize: 16})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3000; i++ {
		if err := client.Observe(string(rune('a'+i%26))+string(rune('0'+i%10))+string(rune(i)), int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := client.Close(); err != nil {
		t.Fatal(err)
	}

	want := mustJSON(t, srv.MemberSample(0, 0))
	if len(srv.MemberSample(0, 1)) != 0 || len(srv.MemberSample(0, 2)) != 0 {
		t.Fatal("replicas have state before any sync")
	}
	if err := srv.SyncNow(); err != nil {
		t.Fatal(err)
	}
	for m := 1; m <= 2; m++ {
		if got := mustJSON(t, srv.MemberSample(0, m)); !bytes.Equal(got, want) {
			t.Fatalf("replica %d differs from primary after one sync:\n got: %s\nwant: %s", m, got, want)
		}
	}
}

// TestSyncSkipsIdlePrimary checks the change-detection: ticker-driven rounds
// push nothing while the primary is idle (SyncNow always pushes).
func TestSyncSkipsIdlePrimary(t *testing.T) {
	srv := newGroupServer(t, 1, 1, 8)
	g := srv.groups[0]
	if err := g.syncRound(Options{Codec: wire.CodecBinary}, false); err != nil {
		t.Fatal(err)
	}
	seqAfterFirst := g.seq
	// No ingest happened: further unforced rounds are skipped.
	for i := 0; i < 3; i++ {
		if err := g.syncRound(Options{Codec: wire.CodecBinary}, false); err != nil {
			t.Fatal(err)
		}
	}
	if g.seq != seqAfterFirst {
		t.Fatalf("idle rounds pushed syncs: seq went %d -> %d", seqAfterFirst, g.seq)
	}
	if err := srv.SyncNow(); err != nil {
		t.Fatal(err)
	}
	if g.seq == seqAfterFirst {
		t.Fatal("SyncNow did not force a push")
	}
}

// TestKillAndPromote walks a full failover at the group level: kill the
// primary, promote the next member the way a failing-over site would, and
// check that the group reports the new primary and keeps syncing from it.
func TestKillAndPromote(t *testing.T) {
	srv := newGroupServer(t, 1, 2, 8)
	addrs := srv.GroupAddrs()[0]

	// Seed the primary with a little state and replicate it.
	sc, err := wire.DialSync(addrs[0], wire.CodecBinary)
	if err != nil {
		t.Fatal(err)
	}
	defer sc.Close()
	if srv.PrimaryIndex(0) != 0 {
		t.Fatalf("initial primary = %d, want 0", srv.PrimaryIndex(0))
	}

	killed, err := srv.KillPrimary(0)
	if err != nil || killed != 0 {
		t.Fatalf("KillPrimary = (%d, %v)", killed, err)
	}
	// A dead member is dead: probes fail.
	if _, err := wire.ProbeEpoch(addrs[0], wire.CodecBinary); err == nil {
		t.Fatal("probe of the killed primary should fail")
	}
	// Deterministic promotion: next member, epoch = its index.
	if epoch, err := wire.PromoteAddr(addrs[1], 1, wire.CodecBinary); err != nil || epoch != 1 {
		t.Fatalf("promote member 1 = (%d, %v)", epoch, err)
	}
	if got := srv.PrimaryIndex(0); got != 1 {
		t.Fatalf("primary after promotion = %d, want 1", got)
	}
	// The sync loop now pushes from member 1 to member 2 (member 0 is dead
	// and skipped).
	if err := srv.SyncNow(); err != nil {
		t.Fatal(err)
	}
	if got, want := srv.Epochs(0), []uint64{0, 1, 1}; len(got) != 3 || got[1] != want[1] || got[2] != want[2] {
		t.Fatalf("epochs after promoted sync = %v, want member 1 and 2 at epoch 1", got)
	}
	// Promotion is idempotent: a second site promoting the same member is a
	// no-op, and the primary does not flap.
	if epoch, err := wire.PromoteAddr(addrs[1], 1, wire.CodecBinary); err != nil || epoch != 1 {
		t.Fatalf("re-promote member 1 = (%d, %v)", epoch, err)
	}
	if got := srv.PrimaryIndex(0); got != 1 {
		t.Fatalf("primary flapped to %d after idempotent re-promotion", got)
	}
}

// TestListenRejectsNonRestorable checks that replica groups refuse
// coordinator nodes that cannot apply a state-sync.
func TestListenRejectsNonRestorable(t *testing.T) {
	_, err := Listen("127.0.0.1:0", 1, Options{Replicas: 1}, func(int, int) netsim.CoordinatorNode {
		return core.NewBroadcastCoordinator(1)
	})
	if err == nil {
		t.Fatal("Listen should reject non-restorable coordinators when replicas are enabled")
	}
}

// flakyConn drops WriteFrames while its shared countdown is positive —
// shared across redials, so a retry budget is consumed honestly.
type flakyConn struct {
	wire.FrameConn
	drops *atomic.Int64
}

func (f flakyConn) WriteFrame(fr *wire.Frame) error {
	if f.drops.Add(-1) >= 0 {
		return errors.New("flaky: injected write loss")
	}
	return f.FrameConn.WriteFrame(fr)
}

// TestSyncNowRetriesTransientLosses pins SyncNow's internal retry: a burst
// of frame losses on the sync link no longer surfaces to the caller — the
// forced round retries until one completes — while a link that never
// delivers exhausts the bounded budget with an error wrapping
// ErrSyncUnhealthy. (Callers previously had to hand-roll this loop; the
// partition chaos test's was removed when the retry moved here.)
func TestSyncNowRetriesTransientLosses(t *testing.T) {
	var drops atomic.Int64
	srv, err := Listen("127.0.0.1:0", 1, Options{
		Replicas:     1,
		SyncInterval: time.Hour, // ticker effectively off; the test drives SyncNow
		Codec:        wire.CodecBinary,
		SyncWrap: func(c wire.FrameConn) wire.FrameConn {
			return flakyConn{FrameConn: c, drops: &drops}
		},
	}, func(int, int) netsim.CoordinatorNode {
		return core.NewInfiniteCoordinator(8)
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// A transient burst: fewer losses than the retry budget can absorb.
	drops.Store(5)
	if err := srv.SyncNow(); err != nil {
		t.Fatalf("SyncNow did not absorb a transient loss burst: %v", err)
	}

	// A dead link: every attempt loses its frame; the budget exhausts with
	// the typed error, not a hang.
	drops.Store(1 << 40)
	err = srv.SyncNow()
	if err == nil {
		t.Fatal("SyncNow succeeded over a link that delivers nothing")
	}
	if !errors.Is(err, ErrSyncUnhealthy) {
		t.Fatalf("err = %v, want errors.Is(err, ErrSyncUnhealthy)", err)
	}

	// Healed link: the server recovers with no caller-side intervention.
	drops.Store(0)
	if err := srv.SyncNow(); err != nil {
		t.Fatalf("SyncNow after heal: %v", err)
	}
}
