package replica

import (
	"errors"
	"testing"

	"repro/internal/core"
	"repro/internal/hashing"
	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/sliding"
	"repro/internal/wire"
)

// TestAddGroupNotSnapshottableTyped pins the typed sentinel at the replica
// attach seam: a coordinator node with neither the Snapshot/Restore API nor
// the legacy restore seam is rejected with an error wrapping
// wire.ErrNotSnapshottable, so callers can branch on the capability instead
// of matching error text.
func TestAddGroupNotSnapshottableTyped(t *testing.T) {
	_, err := Listen("127.0.0.1:0", 1, Options{Replicas: 1}, func(int, int) netsim.CoordinatorNode {
		return core.NewBroadcastCoordinator(1)
	})
	if err == nil {
		t.Fatal("Listen should reject non-snapshottable coordinators when replicas are enabled")
	}
	if !errors.Is(err, wire.ErrNotSnapshottable) {
		t.Fatalf("err = %v, want errors.Is(err, wire.ErrNotSnapshottable)", err)
	}
}

// TestAddGroupMultiCoordinatorSnapshottable asserts the fix for the
// carried-forward gap the sentinel above used to cover: the per-copy
// sliding-window coordinator now implements Snapshot/Restore (section-level
// slot clocks), so a replicated group of them attaches and syncs cleanly.
// (The replica AddGroup path previously returned ErrNotSnapshottable here.)
func TestAddGroupMultiCoordinatorSnapshottable(t *testing.T) {
	srv, err := Listen("127.0.0.1:0", 1, Options{Replicas: 1}, func(int, int) netsim.CoordinatorNode {
		return sliding.NewMultiCoordinator(3)
	})
	if err != nil {
		t.Fatalf("Listen rejected a multi-copy sliding coordinator group: %v", err)
	}
	defer srv.Close()
	if err := srv.SyncNow(); err != nil {
		t.Fatalf("sync round over multi-copy sliding state failed: %v", err)
	}
}

// TestReplicaSyncInstruments drives ingest plus forced and idle sync rounds
// and checks the replication instruments move: rounds pushed, idle rounds
// skipped, state payload counted, the per-slot offer counter fed by the
// injected shard instruments, and the sync-lag gauge set once two pushes
// bound the staleness window. All counter assertions are deltas — the
// default registry is process-global.
func TestReplicaSyncInstruments(t *testing.T) {
	before := obs.Default().Snapshot()

	srv := newGroupServer(t, 1, 1, 16)
	site := core.NewInfiniteSite(0, hashing.NewMurmur2(7))
	client, err := wire.DialSiteOptions(site, srv.GroupAddrs()[0][0], wire.Options{Codec: wire.CodecBinary, BatchSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	const n = 500
	for i := 0; i < n; i++ {
		if err := client.Observe("replica-obs-"+string(rune('a'+i%26))+string(rune('0'+i%10)), int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := client.Close(); err != nil {
		t.Fatal(err)
	}

	if err := srv.SyncNow(); err != nil {
		t.Fatal(err)
	}
	g := srv.groups[0]
	if err := g.syncRound(Options{Codec: wire.CodecBinary}, false); err != nil { // idle: skipped
		t.Fatal(err)
	}
	if err := srv.SyncNow(); err != nil { // second push: sets the lag gauge
		t.Fatal(err)
	}

	after := obs.Default().Snapshot()
	delta := func(name string) uint64 { return after.Counter(name) - before.Counter(name) }
	if d := delta("dds_replica_sync_rounds_total"); d < 2 {
		t.Fatalf("sync rounds delta = %d, want >= 2", d)
	}
	if d := delta("dds_replica_sync_skipped_total"); d < 1 {
		t.Fatalf("sync skipped delta = %d, want >= 1", d)
	}
	if delta("dds_replica_sync_bytes_total")+delta("dds_replica_sync_entries_total") == 0 {
		t.Fatal("no sync payload counted (neither bytes nor entries)")
	}
	// The site filters locally (the paper's message-efficiency claim), so
	// only a fraction of the n observes become offer messages — but some must.
	if d := delta(`dds_shard_offers_total{slot="0"}`); d == 0 {
		t.Fatal("per-shard offers counter did not move")
	}
	if lag := after.Gauge(`dds_replica_sync_lag_ns{slot="0"}`); lag <= 0 {
		t.Fatalf("sync-lag gauge = %d, want > 0 after two pushes", lag)
	}
	hBefore, hAfter := before.Histogram("dds_replica_sync_round_ns"), after.Histogram("dds_replica_sync_round_ns")
	var hDelta uint64
	if hAfter != nil {
		hDelta = hAfter.Count
		if hBefore != nil {
			hDelta -= hBefore.Count
		}
	}
	if hDelta < 2 {
		t.Fatalf("sync-round duration observations delta = %d, want >= 2", hDelta)
	}
}

// TestDeposedFenceInstrumented promotes a replica past the sender's epoch and
// pushes a stale sync at it, asserting the typed ErrDeposed error, the
// deposed-fence counter, and the control-plane event.
func TestDeposedFenceInstrumented(t *testing.T) {
	before := obs.Default().Snapshot()
	evBase := obs.Events().Seq()

	srv := newGroupServer(t, 1, 1, 8)
	g := srv.groups[0]
	m := g.memberList()[1]
	if _, err := wire.PromoteAddr(m.addr, 2, wire.CodecBinary); err != nil {
		t.Fatal(err)
	}
	err := g.push(m, Options{Codec: wire.CodecBinary}, obs.TraceContext{}, 0, 0, 1, nil, nil)
	if !errors.Is(err, wire.ErrDeposed) {
		t.Fatalf("stale push err = %v, want errors.Is(err, wire.ErrDeposed)", err)
	}

	after := obs.Default().Snapshot()
	if d := after.Counter("dds_replica_deposed_fences_total") - before.Counter("dds_replica_deposed_fences_total"); d != 1 {
		t.Fatalf("deposed fence delta = %d, want 1", d)
	}
	saw := false
	for _, ev := range obs.Events().Since(evBase) {
		if ev.Msg == "deposed primary fenced" && ev.Attrs["ack_epoch"] == "2" {
			saw = true
		}
	}
	if !saw {
		t.Fatalf("no deposed-fence event recorded (events: %+v)", obs.Events().Since(evBase))
	}
}
