package dataset

import (
	"math"
	"strings"
	"testing"

	"repro/internal/stream"
)

func TestOC48SpecScaling(t *testing.T) {
	s := OC48(0.001, 1)
	if s.Name != "oc48" {
		t.Fatalf("Name = %q", s.Name)
	}
	if s.Elements != 42269 {
		t.Fatalf("Elements = %d, want 42269", s.Elements)
	}
	if s.TargetDistinct != 4338 {
		t.Fatalf("TargetDistinct = %d, want 4338", s.TargetDistinct)
	}
	// Scale 1 reproduces the paper's Table 5.1 sizes.
	full := OC48(1, 1)
	if full.Elements != OC48Elements || full.TargetDistinct != OC48Distinct {
		t.Fatalf("full-scale spec = %+v", full)
	}
	// A non-positive scale falls back to full size rather than zero.
	if OC48(0, 1).Elements != OC48Elements {
		t.Fatal("scale 0 should fall back to full size")
	}
}

func TestEnronSpecScaling(t *testing.T) {
	s := Enron(0.01, 2)
	if s.Name != "enron" || s.Elements != 15575 || s.TargetDistinct != 3743 {
		t.Fatalf("Enron spec = %+v", s)
	}
}

func TestGenerateCounts(t *testing.T) {
	spec := OC48(0.002, 7) // ~84.5k elements, ~8.7k distinct
	elements := spec.Generate()
	if len(elements) != spec.Elements {
		t.Fatalf("generated %d elements, want %d", len(elements), spec.Elements)
	}
	st := stream.Summarize(elements)
	// The realized distinct count concentrates around the target; allow 15%.
	lo := int(float64(spec.TargetDistinct) * 0.85)
	hi := int(float64(spec.TargetDistinct) * 1.15)
	if st.Distinct < lo || st.Distinct > hi {
		t.Fatalf("distinct = %d, want within [%d, %d]", st.Distinct, lo, hi)
	}
	// Slots are the element index.
	if elements[0].Slot != 0 || elements[len(elements)-1].Slot != int64(len(elements)-1) {
		t.Fatal("slots are not the element index")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Enron(0.01, 99).Generate()
	b := Enron(0.01, 99).Generate()
	if len(a) != len(b) {
		t.Fatal("lengths differ across identical runs")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("element %d differs: %v vs %v", i, a[i], b[i])
		}
	}
	c := Enron(0.01, 100).Generate()
	same := 0
	for i := range a {
		if a[i].Key == c[i].Key {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("different seeds produced identical streams")
	}
}

func TestGenerateKeyFormats(t *testing.T) {
	oc := OC48(0.0005, 3).Generate()
	for _, e := range oc[:100] {
		if !strings.Contains(e.Key, "->") || !strings.Contains(e.Key, ".") {
			t.Fatalf("OC48 key %q does not look like an IP pair", e.Key)
		}
	}
	en := Enron(0.005, 3).Generate()
	for _, e := range en[:100] {
		if !strings.Contains(e.Key, "@enron.com") {
			t.Fatalf("Enron key %q does not look like an e-mail pair", e.Key)
		}
	}
	// Default key format.
	plain := Uniform(100, 50, 5).Generate()
	if !strings.HasPrefix(plain[0].Key, "key-") {
		t.Fatalf("default key format produced %q", plain[0].Key)
	}
}

func TestGenerateHeavyTail(t *testing.T) {
	// With a positive Zipf exponent the most frequent key should account for
	// a visibly larger share of repeats than under the uniform generator.
	count := func(spec Spec) int {
		counts := map[string]int{}
		for _, e := range spec.Generate() {
			counts[e.Key]++
		}
		max := 0
		for _, c := range counts {
			if c > max {
				max = c
			}
		}
		return max
	}
	skewed := Spec{Name: "skew", Elements: 50000, TargetDistinct: 1000, ZipfExponent: 1.2, Seed: 11}
	flat := Uniform(50000, 1000, 11)
	skewMax, flatMax := count(skewed), count(flat)
	if skewMax <= 3*flatMax {
		t.Fatalf("skewed max frequency %d not clearly above uniform max %d", skewMax, flatMax)
	}
	// Under the Zipf spec the single most popular key carries a large share
	// of the whole stream; under the uniform spec it must not.
	if float64(skewMax)/50000 < 0.10 {
		t.Fatalf("skewed top-key share %.3f unexpectedly small", float64(skewMax)/50000)
	}
	if float64(flatMax)/50000 > 0.05 {
		t.Fatalf("uniform top-key share %.3f unexpectedly large", float64(flatMax)/50000)
	}
}

func TestGenerateEdgeCases(t *testing.T) {
	if got := (Spec{Elements: 0}).Generate(); got != nil {
		t.Fatalf("zero elements should generate nil, got %d", len(got))
	}
	one := (Spec{Elements: 1, TargetDistinct: 0}).Generate()
	if len(one) != 1 {
		t.Fatalf("single element stream length %d", len(one))
	}
	// TargetDistinct greater than Elements clamps: every element distinct.
	ad := AllDistinct(500, 4).Generate()
	if stream.Summarize(ad).Distinct != 500 {
		t.Fatalf("AllDistinct produced %d distinct, want 500", stream.Summarize(ad).Distinct)
	}
}

func TestUniformRepeatSpread(t *testing.T) {
	// Under the uniform spec, keys introduced in the second half of the
	// stream (which all coexist for a comparable amount of time) should have
	// comparable frequencies: none dramatically above their group mean.
	// Early keys legitimately accumulate more repeats because they exist for
	// longer — that is a property of the first-occurrence process, not skew.
	spec := Uniform(20000, 200, 13)
	elements := spec.Generate()
	firstSeen := map[string]int{}
	counts := map[string]int{}
	for i, e := range elements {
		if _, ok := firstSeen[e.Key]; !ok {
			firstSeen[e.Key] = i
		}
		counts[e.Key]++
	}
	var late []int
	for k, c := range counts {
		if firstSeen[k] > len(elements)/2 {
			late = append(late, c)
		}
	}
	if len(late) < 10 {
		t.Fatalf("too few late keys (%d) to evaluate spread", len(late))
	}
	sum, max := 0, 0
	for _, c := range late {
		sum += c
		if c > max {
			max = c
		}
	}
	mean := float64(sum) / float64(len(late))
	if float64(max) > mean*6 {
		t.Fatalf("late-key max frequency %d far exceeds group mean %.1f under the uniform spec", max, mean)
	}
}

func TestIPPairKeyStable(t *testing.T) {
	if IPPairKey(7) != IPPairKey(7) {
		t.Fatal("IPPairKey not deterministic")
	}
	if IPPairKey(7) == IPPairKey(8) {
		t.Fatal("adjacent key indices rendered identically")
	}
}

func TestEmailPairKeyStable(t *testing.T) {
	if EmailPairKey(3) != EmailPairKey(3) {
		t.Fatal("EmailPairKey not deterministic")
	}
	if !strings.Contains(EmailPairKey(3), "->") {
		t.Fatal("EmailPairKey missing separator")
	}
}

func TestGenerateAdversarial(t *testing.T) {
	arrivals := GenerateAdversarial(10, 4)
	if len(arrivals) != 40 {
		t.Fatalf("len = %d, want 40", len(arrivals))
	}
	st := stream.SummarizeArrivals(arrivals)
	if st.Distinct != 10 {
		t.Fatalf("distinct = %d, want 10 (one new key per round)", st.Distinct)
	}
	// Every site sees every key (flooding).
	perSite := stream.PerSiteDistinct(arrivals, 4)
	for i, d := range perSite {
		if d != 10 {
			t.Fatalf("site %d distinct = %d, want 10", i, d)
		}
	}
	// Slots are the round index and non-decreasing.
	for i := 1; i < len(arrivals); i++ {
		if arrivals[i].Slot < arrivals[i-1].Slot {
			t.Fatal("adversarial arrivals not slot-ordered")
		}
	}
}

func TestScaledRounding(t *testing.T) {
	if scaled(10, 0.24) != 2 {
		t.Fatalf("scaled(10, 0.24) = %d", scaled(10, 0.24))
	}
	if scaled(1, 0.0001) != 1 {
		t.Fatal("scaled should never return less than 1")
	}
	if scaled(100, 1) != 100 {
		t.Fatal("identity scale broken")
	}
	if got := scaled(OC48Elements, 0.01); math.Abs(float64(got)-0.01*OC48Elements) > 1 {
		t.Fatalf("scaled 1%% of OC48 = %d", got)
	}
}
