// Package dataset provides seeded synthetic stand-ins for the two real-world
// datasets of the paper's evaluation, plus generic generators used by tests
// and extension experiments.
//
// The paper evaluates on the CAIDA OC48 IP trace (42,268,510 elements,
// 4,337,768 distinct source-destination IP pairs) and the Enron e-mail corpus
// (1,557,491 elements, 374,330 distinct sender-recipient pairs); see
// Table 5.1. Both are unavailable here (the CAIDA trace requires a license),
// so this package generates synthetic streams that preserve what the
// algorithms are sensitive to: the ratio of distinct to total elements, the
// heavy-tailed repetition of popular keys, and the interleaving of first
// occurrences with repeats. Scale factors shrink the default sizes so the
// full experiment grid runs in seconds; the unscaled sizes are available by
// passing scale 1.
package dataset

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/hashing"
	"repro/internal/stream"
)

// Spec describes a synthetic stream to generate.
type Spec struct {
	// Name labels the dataset in experiment output ("oc48", "enron", ...).
	Name string
	// Elements is the total number of observations to generate.
	Elements int
	// TargetDistinct is the expected number of distinct keys; the generator
	// introduces new keys with probability TargetDistinct/Elements per
	// observation, so the realized distinct count concentrates tightly
	// around the target.
	TargetDistinct int
	// ZipfExponent shapes how repeats are distributed over already-seen keys
	// (larger means more skew toward a few very popular keys).
	ZipfExponent float64
	// Seed makes generation reproducible.
	Seed uint64
	// KeyFormat renders the i-th distinct key as a string. When nil, keys
	// are formatted as "key-<i>".
	KeyFormat func(i int) string
}

// Paper-reported dataset sizes (Table 5.1).
const (
	OC48Elements  = 42268510
	OC48Distinct  = 4337768
	EnronElements = 1557491
	EnronDistinct = 374330
)

// OC48 returns a Spec mimicking the OC48 IP-pair trace at the given scale
// (1 reproduces the paper's element and distinct counts; the experiments
// default to 0.01).
func OC48(scale float64, seed uint64) Spec {
	return Spec{
		Name:           "oc48",
		Elements:       scaled(OC48Elements, scale),
		TargetDistinct: scaled(OC48Distinct, scale),
		ZipfExponent:   1.2,
		Seed:           seed,
		KeyFormat:      IPPairKey,
	}
}

// Enron returns a Spec mimicking the Enron e-mail sender-recipient stream at
// the given scale (1 reproduces the paper's counts; experiments default to
// 0.1).
func Enron(scale float64, seed uint64) Spec {
	return Spec{
		Name:           "enron",
		Elements:       scaled(EnronElements, scale),
		TargetDistinct: scaled(EnronDistinct, scale),
		ZipfExponent:   1.1,
		Seed:           seed,
		KeyFormat:      EmailPairKey,
	}
}

// Uniform returns a Spec whose repeats are spread evenly over the already
// seen keys (no Zipf skew). Used by tests and ablations.
func Uniform(elements, distinct int, seed uint64) Spec {
	return Spec{
		Name:           "uniform",
		Elements:       elements,
		TargetDistinct: distinct,
		ZipfExponent:   0,
		Seed:           seed,
	}
}

// AllDistinct returns a Spec in which every observation is a new key — the
// worst case for message cost at fixed stream length.
func AllDistinct(elements int, seed uint64) Spec {
	return Spec{
		Name:           "alldistinct",
		Elements:       elements,
		TargetDistinct: elements,
		ZipfExponent:   0,
		Seed:           seed,
	}
}

func scaled(v int, scale float64) int {
	if scale <= 0 {
		scale = 1
	}
	n := int(math.Round(float64(v) * scale))
	if n < 1 {
		n = 1
	}
	return n
}

// IPPairKey renders distinct key index i as a "srcIP->dstIP" string, the
// element construction the paper uses for the OC48 trace.
func IPPairKey(i int) string {
	src := hashing.Mix64(uint64(i)*2 + 1)
	dst := hashing.Mix64(uint64(i)*2 + 2)
	return fmt.Sprintf("%d.%d.%d.%d->%d.%d.%d.%d",
		byte(src>>24), byte(src>>16), byte(src>>8), byte(src),
		byte(dst>>24), byte(dst>>16), byte(dst>>8), byte(dst))
}

// EmailPairKey renders distinct key index i as a "sender->recipient" e-mail
// address pair, the element construction the paper uses for the Enron corpus.
func EmailPairKey(i int) string {
	sender := hashing.Mix64(uint64(i)*2+1) % 100000
	recipient := hashing.Mix64(uint64(i)*2+2) % 100000
	return fmt.Sprintf("user%05d@enron.com->user%05d@enron.com", sender, recipient)
}

// Generate produces the stream described by the Spec. Slots are assigned as
// the element index (0, 1, 2, ...); use stream.Reslot for the sliding-window
// experiments.
//
// The generator is a first-occurrence process: each observation is a brand
// new key with probability TargetDistinct/Elements, otherwise it repeats an
// already seen key chosen with a Zipf-like bias toward early (popular) keys.
// This matches the two real traces in the properties the algorithms care
// about: d/n ratio, heavy-tailed repeats, and repeats interleaved with first
// occurrences throughout the stream.
func (s Spec) Generate() []stream.Element {
	if s.Elements <= 0 {
		return nil
	}
	target := s.TargetDistinct
	if target < 1 {
		target = 1
	}
	if target > s.Elements {
		target = s.Elements
	}
	keyFormat := s.KeyFormat
	if keyFormat == nil {
		keyFormat = func(i int) string { return fmt.Sprintf("key-%d", i) }
	}

	rng := rand.New(rand.NewSource(int64(s.Seed)))
	pNew := float64(target) / float64(s.Elements)

	elements := make([]stream.Element, 0, s.Elements)
	keys := make([]string, 0, target)

	for i := 0; i < s.Elements; i++ {
		var key string
		if len(keys) == 0 || (len(keys) < target && rng.Float64() < pNew) {
			key = keyFormat(len(keys))
			keys = append(keys, key)
		} else {
			key = keys[s.pickRepeat(rng, len(keys))]
		}
		elements = append(elements, stream.Element{Key: key, Slot: int64(i)})
	}
	return elements
}

// pickRepeat selects the index of an already-seen key. With a positive
// ZipfExponent the selection follows a bounded Zipf law over ranks 1..n
// (rank r chosen with probability proportional to r^-exponent, sampled by
// inverting the continuous approximation of the CDF), so early keys stay
// very popular. With exponent 0 the selection is uniform.
func (s Spec) pickRepeat(rng *rand.Rand, n int) int {
	if n <= 1 {
		return 0
	}
	if s.ZipfExponent <= 0 {
		return rng.Intn(n)
	}
	u := rng.Float64()
	if u <= 0 {
		u = math.SmallestNonzeroFloat64
	}
	a := s.ZipfExponent
	fn := float64(n)
	var rank float64
	if math.Abs(a-1) < 1e-9 {
		// CDF(r) = ln(r)/ln(n)  =>  r = n^u.
		rank = math.Pow(fn, u)
	} else {
		// CDF(r) = (r^(1-a) − 1) / (n^(1-a) − 1)  =>  invert for r.
		rank = math.Pow(1+u*(math.Pow(fn, 1-a)-1), 1/(1-a))
	}
	idx := int(rank) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= n {
		idx = n - 1
	}
	return idx
}

// GenerateAdversarial builds a worst-case ("adversarial") distributed input
// for the lower-bound experiment of Lemma 9: in every round a single brand
// new element is delivered to every one of the k sites (flooding of a fresh
// key). It returns the arrivals directly because the adversary controls
// distribution, not just content.
func GenerateAdversarial(rounds, k int) []stream.Arrival {
	arrivals := make([]stream.Arrival, 0, rounds*k)
	for r := 0; r < rounds; r++ {
		key := fmt.Sprintf("adversary-%d", r)
		for site := 0; site < k; site++ {
			arrivals = append(arrivals, stream.Arrival{Slot: int64(r), Site: site, Key: key})
		}
	}
	return arrivals
}
