package repro_test

// End-to-end integration tests: drive the full pipeline the way a user (or
// one of the examples) would — dataset generation, distribution across
// sites, protocol simulation, and query answering — and cross-check the
// pieces against each other.

import (
	"math"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/distribute"
	"repro/internal/estimate"
	"repro/internal/hashing"
	"repro/internal/sliding"
	"repro/internal/stats"
	"repro/internal/stream"
)

func TestIntegrationInfinitePipeline(t *testing.T) {
	const (
		k    = 12
		s    = 250
		seed = 99
	)
	spec := dataset.OC48(0.003, seed) // ~127k packets, ~13k distinct flows
	elements := spec.Generate()
	truth := stream.Summarize(elements)

	hasher := hashing.NewMurmur2(seed)
	system := core.NewSystem(k, s, hasher)
	arrivals := distribute.Apply(elements, distribute.NewRandom(k, seed))
	metrics, err := system.Runner(0, 0).RunSequential(arrivals)
	if err != nil {
		t.Fatal(err)
	}

	// 1. Sample correctness against the centralized oracle.
	oracle := core.NewReference(s, hasher)
	oracle.ObserveAll(stream.Keys(elements))
	if !oracle.SameSample(metrics.FinalSample) {
		t.Fatal("distributed sample does not match the centralized oracle")
	}

	// 2. Message cost within the analytic envelope.
	perSite := stream.PerSiteDistinct(arrivals, k)
	bound := stats.PerSiteExpectedUpperBound(s, perSite)
	if float64(metrics.TotalMessages()) > 1.5*bound {
		t.Fatalf("message cost %d exceeds 1.5x the Observation 1 bound %.0f", metrics.TotalMessages(), bound)
	}

	// 3. Query answering: the distinct-count estimate from the sketch lands
	// within 15% of the truth at s=250, and a query-time predicate estimate
	// is consistent with the exact answer.
	coord := system.Coordinator.(*core.InfiniteCoordinator)
	count, err := estimate.DistinctCount(metrics.FinalSample, s, coord.Threshold())
	if err != nil {
		t.Fatal(err)
	}
	relErr := math.Abs(count.Estimate-float64(truth.Distinct)) / float64(truth.Distinct)
	if relErr > 0.15 {
		t.Fatalf("distinct estimate %.0f off by %.1f%% from %d", count.Estimate, 100*relErr, truth.Distinct)
	}

	pred := func(flow string) bool { return strings.Contains(flow, "->1") }
	frac, err := estimate.Fraction(metrics.FinalSample, pred)
	if err != nil {
		t.Fatal(err)
	}
	exact := 0
	for _, key := range stream.DistinctKeys(elements) {
		if pred(key) {
			exact++
		}
	}
	exactFrac := float64(exact) / float64(truth.Distinct)
	if math.Abs(frac.Estimate-exactFrac) > 0.10 {
		t.Fatalf("predicate fraction estimate %.3f vs exact %.3f", frac.Estimate, exactFrac)
	}
}

func TestIntegrationProposedVsBroadcastVsNaive(t *testing.T) {
	// The three infinite-window variants must agree on the sample while
	// ordering as expected on cost: proposed <= naive <= broadcast is not
	// guaranteed in general, but proposed must beat broadcast at large k and
	// beat the naive site on repeat-heavy data.
	const (
		k    = 60
		s    = 15
		seed = 7
	)
	elements := dataset.Enron(0.02, seed).Generate()
	hasher := hashing.NewMurmur2(seed)
	arrivals := distribute.Apply(elements, distribute.NewRandom(k, seed))

	oracle := core.NewReference(s, hasher)
	oracle.ObserveAll(stream.Keys(elements))

	run := func(sys *core.System) int {
		m, err := sys.Runner(0, 0).RunSequential(arrivals)
		if err != nil {
			t.Fatal(err)
		}
		if !oracle.SameSample(m.FinalSample) {
			t.Fatal("sample mismatch")
		}
		return m.TotalMessages()
	}
	proposed := run(core.NewSystem(k, s, hasher))
	naive := run(core.NewNaiveSystem(k, s, hasher))
	broadcast := run(core.NewBroadcastSystem(k, s, hasher))

	if proposed >= broadcast {
		t.Fatalf("proposed (%d) should beat broadcast (%d) at k=%d", proposed, broadcast, k)
	}
	if proposed > naive {
		t.Fatalf("proposed (%d) should not exceed the naive variant (%d)", proposed, naive)
	}
}

func TestIntegrationSlidingPipeline(t *testing.T) {
	const (
		k      = 8
		window = 300
		seed   = 31
	)
	elements := stream.Reslot(dataset.Enron(0.01, seed).Generate(), 5)
	truth := stream.Summarize(elements)
	hasher := hashing.NewMurmur2(seed)

	system := sliding.NewSystem(k, window, hasher, seed)
	arrivals := distribute.Apply(elements, distribute.NewRandom(k, seed))
	metrics, err := system.Runner(0, 25).RunSequential(arrivals)
	if err != nil {
		t.Fatal(err)
	}

	// The final sample is the minimum-hash element of the last window.
	if len(metrics.FinalSample) != 1 {
		t.Fatalf("final sample size %d", len(metrics.FinalSample))
	}
	live := stream.WindowDistinct(arrivals, truth.MaxSlot, window)
	bestHash := math.Inf(1)
	for key := range live {
		if u := hasher.Unit(key); u < bestHash {
			bestHash = u
		}
	}
	if metrics.FinalSample[0].Hash != bestHash {
		t.Fatalf("final sample hash %.6f, want window minimum %.6f", metrics.FinalSample[0].Hash, bestHash)
	}

	// Per-site memory stays in the H_M ballpark (Lemma 10).
	perSiteWindowLoad := window * 5 / int64(k)
	bound := stats.Harmonic(int(perSiteWindowLoad))
	if metrics.MeanMemory() > 4*bound+2 {
		t.Fatalf("mean per-site memory %.1f far above H_M %.1f", metrics.MeanMemory(), bound)
	}
	if metrics.TotalMessages() == 0 {
		t.Fatal("no messages exchanged")
	}
}

func TestIntegrationEnginesAgreeAcrossProtocols(t *testing.T) {
	// Both engines must yield oracle-consistent results for the proposed
	// infinite-window protocol and identical per-copy candidates for the
	// multi-copy sliding sampler.
	const seed = 5
	elements := stream.Reslot(dataset.Uniform(30000, 6000, seed).Generate(), 20)
	hasher := hashing.NewMurmur2(seed)

	// Infinite window.
	oracle := core.NewReference(12, hasher)
	oracle.ObserveAll(stream.Keys(elements))
	arrivals := distribute.Apply(elements, distribute.NewRandom(6, seed))
	seqSys := core.NewSystem(6, 12, hasher)
	seqM, err := seqSys.Runner(0, 0).RunSequential(arrivals)
	if err != nil {
		t.Fatal(err)
	}
	concSys := core.NewSystem(6, 12, hasher)
	concM, err := concSys.Runner(0, 0).RunConcurrent(arrivals)
	if err != nil {
		t.Fatal(err)
	}
	if !oracle.SameSample(seqM.FinalSample) || !oracle.SameSample(concM.FinalSample) {
		t.Fatal("engines disagree with the oracle")
	}

	// Sliding window, size-4 sample.
	slidingArrivals := distribute.Apply(elements, distribute.NewRandom(4, seed))
	a := sliding.NewMultiSystem(4, 4, 150, hashing.KindMurmur2, seed)
	if _, err := a.Runner(0, 0).RunSequential(slidingArrivals); err != nil {
		t.Fatal(err)
	}
	b := sliding.NewMultiSystem(4, 4, 150, hashing.KindMurmur2, seed)
	if _, err := b.Runner(0, 0).RunConcurrent(slidingArrivals); err != nil {
		t.Fatal(err)
	}
	ca := a.Coordinator.(*sliding.MultiCoordinator)
	cb := b.Coordinator.(*sliding.MultiCoordinator)
	for i := 0; i < 4; i++ {
		ea, oka := ca.CopySample(i)
		eb, okb := cb.CopySample(i)
		if oka != okb || ea.Key != eb.Key {
			t.Fatalf("copy %d: engines disagree (%q vs %q)", i, ea.Key, eb.Key)
		}
	}
}
