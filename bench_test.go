// Package repro_test holds the repository-level benchmark harness: one
// benchmark per table and figure of the paper's evaluation (each regenerates
// the corresponding series at reduced scale and reports the headline numbers
// as benchmark metrics), plus micro-benchmarks of the building blocks.
//
// Run everything with:
//
//	go test -bench=. -benchmem ./...
//
// Full-scale series (paper-sized datasets and run counts) are produced by
// cmd/ddsbench with the -paper flag rather than by these benchmarks.
package repro_test

import (
	"fmt"
	"strconv"
	"testing"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/distribute"
	"repro/internal/experiments"
	"repro/internal/hashing"
	"repro/internal/netsim"
	"repro/internal/sliding"
	"repro/internal/stream"
	"repro/internal/treap"
	"repro/internal/wire"
)

// benchConfig is the experiment configuration used by the per-figure
// benchmarks: single runs on small synthetic datasets so that each benchmark
// iteration completes quickly while still exercising the full pipeline.
func benchConfig() experiments.Config {
	cfg := experiments.QuickConfig()
	cfg.Runs = 1
	cfg.SlidingRuns = 1
	return cfg
}

// lastCell extracts a numeric cell from the final row of a table, used to
// surface experiment outputs as benchmark metrics.
func lastCell(t *experiments.Table, col int) float64 {
	if len(t.Rows) == 0 {
		return 0
	}
	v, err := strconv.ParseFloat(t.Rows[len(t.Rows)-1][col], 64)
	if err != nil {
		return 0
	}
	return v
}

func benchExperiment(b *testing.B, id string, metricCol int, metricName string) {
	b.Helper()
	runner, ok := experiments.ByID(id)
	if !ok {
		b.Fatalf("unknown experiment %q", id)
	}
	cfg := benchConfig()
	var last float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		table := runner.Run(cfg)
		last = lastCell(table, metricCol)
	}
	b.ReportMetric(last, metricName)
}

// --- one benchmark per table / figure --------------------------------------

func BenchmarkTable51_DatasetStats(b *testing.B) {
	benchExperiment(b, "table5.1", 3, "distinct_elements")
}

func BenchmarkFigure51_Distribution(b *testing.B) {
	benchExperiment(b, "fig5.1", 3, "final_messages")
}

func BenchmarkFigure52_SampleSize(b *testing.B) {
	benchExperiment(b, "fig5.2", 3, "messages_at_s100")
}

func BenchmarkFigure53_Sites(b *testing.B) {
	benchExperiment(b, "fig5.3", 3, "messages_at_k100")
}

func BenchmarkFigure54_Broadcast(b *testing.B) {
	benchExperiment(b, "fig5.4", 3, "broadcast_final_messages")
}

func BenchmarkFigure55_BroadcastSampleSize(b *testing.B) {
	benchExperiment(b, "fig5.5", 3, "broadcast_messages_at_s100")
}

func BenchmarkFigure56_DominateRate(b *testing.B) {
	benchExperiment(b, "fig5.6", 3, "broadcast_messages_at_rate1000")
}

func BenchmarkFigure57_WindowMemory(b *testing.B) {
	benchExperiment(b, "fig5.7", 2, "mean_memory_at_w5000")
}

func BenchmarkFigure58_WindowMessages(b *testing.B) {
	benchExperiment(b, "fig5.8", 2, "messages_at_w5000")
}

func BenchmarkFigure59_SitesMemory(b *testing.B) {
	benchExperiment(b, "fig5.9", 2, "mean_memory_at_k50")
}

func BenchmarkFigure510_SitesMessages(b *testing.B) {
	benchExperiment(b, "fig5.10", 2, "messages_at_k50")
}

// --- extension experiments --------------------------------------------------

func BenchmarkExtension_DDSvsDRS(b *testing.B) {
	benchExperiment(b, "ext.drs", 3, "dds_over_drs_at_k100")
}

func BenchmarkExtension_BoundCheck(b *testing.B) {
	benchExperiment(b, "ext.bounds", 7, "measured_over_upper")
}

func BenchmarkExtension_WithReplacement(b *testing.B) {
	benchExperiment(b, "ext.wr", 3, "wr_over_wor_at_s50")
}

func BenchmarkExtension_Engines(b *testing.B) {
	benchExperiment(b, "ext.engines", 1, "concurrent_messages")
}

func BenchmarkExtension_TreapBound(b *testing.B) {
	benchExperiment(b, "ext.treap", 1, "mean_store_at_w5000")
}

func BenchmarkExtension_DuplicateAblation(b *testing.B) {
	benchExperiment(b, "ext.dupes", 2, "naive_messages")
}

func BenchmarkExtension_MultiWindow(b *testing.B) {
	benchExperiment(b, "ext.swindow", 1, "messages_at_s20")
}

// --- micro-benchmarks of the building blocks --------------------------------

func BenchmarkMurmur2Hash(b *testing.B) {
	h := hashing.NewMurmur2(1)
	key := "192.0.2.17->198.51.100.3"
	b.SetBytes(int64(len(key)))
	for i := 0; i < b.N; i++ {
		_ = h.Unit(key)
	}
}

func BenchmarkMurmur3Hash(b *testing.B) {
	h := hashing.NewMurmur3(1)
	key := "someone@enron.com->someone.else@enron.com"
	b.SetBytes(int64(len(key)))
	for i := 0; i < b.N; i++ {
		_ = h.Unit(key)
	}
}

func BenchmarkTreapInsertDelete(b *testing.B) {
	tr := treap.NewWithSeed[int, int](func(a, c int) bool { return a < c }, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Set(i%8192, i)
		if i%3 == 0 {
			tr.Delete((i - 512) % 8192)
		}
	}
}

func BenchmarkWindowStoreObserve(b *testing.B) {
	h := hashing.NewMurmur2(3)
	w := treap.NewWindowStore(7)
	keys := make([]string, 4096)
	hashes := make([]float64, 4096)
	for i := range keys {
		keys[i] = fmt.Sprintf("key-%d", i)
		hashes[i] = h.Unit(keys[i])
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		idx := i % len(keys)
		w.Observe(keys[idx], hashes[idx], int64(i+1000))
		if i%16 == 0 {
			w.ExpireBefore(int64(i - 500))
		}
	}
}

// BenchmarkInfiniteSamplerThroughput measures end-to-end element processing
// throughput of the infinite-window system on the sequential engine.
func BenchmarkInfiniteSamplerThroughput(b *testing.B) {
	elements := dataset.Uniform(50000, 10000, 3).Generate()
	arrivals := distribute.Apply(elements, distribute.NewRandom(8, 5))
	b.SetBytes(0)
	b.ResetTimer()
	var msgs int
	for i := 0; i < b.N; i++ {
		sys := core.NewSystem(8, 20, hashing.NewMurmur2(uint64(i)+1))
		m, err := sys.Runner(0, 0).RunSequential(arrivals)
		if err != nil {
			b.Fatal(err)
		}
		msgs = m.TotalMessages()
	}
	b.ReportMetric(float64(len(arrivals))*float64(b.N)/b.Elapsed().Seconds(), "elements/s")
	b.ReportMetric(float64(msgs), "messages")
}

// BenchmarkInfiniteSamplerConcurrent measures the goroutine/channel engine on
// the same workload.
func BenchmarkInfiniteSamplerConcurrent(b *testing.B) {
	elements := stream.Reslot(dataset.Uniform(50000, 10000, 3).Generate(), 100)
	arrivals := distribute.Apply(elements, distribute.NewRandom(8, 5))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sys := core.NewSystem(8, 20, hashing.NewMurmur2(uint64(i)+1))
		if _, err := sys.Runner(0, 0).RunConcurrent(arrivals); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(arrivals))*float64(b.N)/b.Elapsed().Seconds(), "elements/s")
}

// BenchmarkClusterIngest measures real TCP ingest into the sharded cluster
// subsystem across the transport matrix: the JSON-per-offer baseline versus
// the batched binary codec, synchronous versus pipelined, at 1 shard and at
// 4 shards. Each iteration replays the full synthetic stream through
// concurrent site clients and cross-checks the merged sample against the
// centralized reference. The flood cases put one offer per element on the
// wire (transport-bound); the rest run the protocol's own offer filter.
func BenchmarkClusterIngest(b *testing.B) {
	cases := []struct {
		name   string
		shards int
		codec  wire.Codec
		batch  int
		window int
		flood  bool
	}{
		{"shards1-json-per-offer", 1, wire.CodecJSON, 1, 0, false},
		{"shards1-binary-batch64", 1, wire.CodecBinary, 64, 0, false},
		{"shards4-json-per-offer", 4, wire.CodecJSON, 1, 0, false},
		{"shards4-binary-batch64", 4, wire.CodecBinary, 64, 0, false},
		{"shards4-binary-batch64-win8", 4, wire.CodecBinary, 64, 8, false},
		{"shards4-flood-sync", 4, wire.CodecBinary, 64, 0, true},
		{"shards4-flood-win8", 4, wire.CodecBinary, 64, 8, true},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			cfg := cluster.DefaultBenchConfig()
			cfg.Shards = c.shards
			cfg.Codec = c.codec
			cfg.Batch = c.batch
			cfg.Window = c.window
			cfg.Flood = c.flood
			var last *cluster.BenchResult
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := cluster.RunIngestBench(cfg)
				if err != nil {
					b.Fatal(err)
				}
				last = res
			}
			b.ReportMetric(last.OpsPerSec, "elements/s")
			b.ReportMetric(last.MsgsPerElement, "msgs/element")
		})
	}
}

// BenchmarkSlidingSamplerThroughput measures the sliding-window system.
func BenchmarkSlidingSamplerThroughput(b *testing.B) {
	elements := stream.Reslot(dataset.Uniform(30000, 6000, 9).Generate(), 5)
	arrivals := distribute.Apply(elements, distribute.NewRandom(10, 4))
	b.ResetTimer()
	var metrics *netsim.Metrics
	for i := 0; i < b.N; i++ {
		sys := sliding.NewSystem(10, 500, hashing.NewMurmur2(uint64(i)+77), 3)
		m, err := sys.Runner(0, 0).RunSequential(arrivals)
		if err != nil {
			b.Fatal(err)
		}
		metrics = m
	}
	b.ReportMetric(float64(len(arrivals))*float64(b.N)/b.Elapsed().Seconds(), "elements/s")
	b.ReportMetric(float64(metrics.TotalMessages()), "messages")
}
