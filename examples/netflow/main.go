// Netflow: the paper's motivating OC48 scenario. Several collectors each see
// part of the traffic of a peering link; a central coordinator continuously
// holds a random sample of the *distinct* source→destination flows, which it
// uses to answer ad-hoc questions such as "how many distinct flows originate
// from this /8 prefix?" — the predicate is only known at query time, which is
// exactly what a distinct sample is for.
//
//	go run ./examples/netflow
package main

import (
	"fmt"
	"log"
	"strings"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/distribute"
	"repro/internal/estimate"
	"repro/internal/hashing"
	"repro/internal/stream"
)

func main() {
	const (
		collectors = 8
		sampleSize = 400
		seed       = 7
	)

	// A scaled-down OC48-like trace: IP-pair keys with heavy-tailed repeats
	// (popular flows send many packets, the distinct sample must not be
	// biased toward them).
	spec := dataset.OC48(0.002, seed) // ~85k packets, ~8.7k distinct flows
	packets := spec.Generate()
	stats := stream.Summarize(packets)

	hasher := hashing.NewMurmur2(seed)
	system := core.NewSystem(collectors, sampleSize, hasher)

	// Each packet is routed to one collector, as a load balancer would.
	arrivals := distribute.Apply(packets, distribute.NewRandom(collectors, seed))
	metrics, err := system.Runner(0, 0).RunSequential(arrivals)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("observed %d packets over %d distinct flows at %d collectors\n",
		stats.Elements, stats.Distinct, collectors)
	fmt.Printf("coordinator holds a distinct sample of %d flows after %d messages\n\n",
		len(metrics.FinalSample), metrics.TotalMessages())

	// --- query 1: estimate the total number of distinct flows -------------
	// The bottom-s sketch (sample plus its threshold u, the s-th smallest
	// hash) gives the classic KMV estimate d ≈ (s-1)/u with a confidence
	// band of about 1/sqrt(s).
	coordinator := system.Coordinator.(*core.InfiniteCoordinator)
	total, err := estimate.DistinctCount(metrics.FinalSample, sampleSize, coordinator.Threshold())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("distinct flow estimate: %.0f  [%.0f, %.0f]  (true %d, error %+.1f%%)\n",
		total.Estimate, total.Low, total.High, stats.Distinct,
		100*(total.Estimate-float64(stats.Distinct))/float64(stats.Distinct))

	// --- query 2: a predicate supplied only at query time -----------------
	// "How many distinct flows have a source address in 0-63.x.x.x?"
	// Answer from the sample, then compare with the exact answer.
	predicate := func(flow string) bool {
		src, _, found := strings.Cut(flow, "->")
		if !found {
			return false
		}
		firstOctet, _, _ := strings.Cut(src, ".")
		return len(firstOctet) > 0 && firstOctet[0] >= '0' && firstOctet[0] <= '9' && atoiSafe(firstOctet) < 64
	}

	subset, err := estimate.SubsetCount(metrics.FinalSample, sampleSize, coordinator.Threshold(), predicate)
	if err != nil {
		log.Fatal(err)
	}
	fraction, _ := estimate.Fraction(metrics.FinalSample, predicate)

	trueMatches := 0
	for _, flow := range stream.DistinctKeys(packets) {
		if predicate(flow) {
			trueMatches++
		}
	}
	fmt.Printf("flows from low /8 prefixes: sample estimate %.1f%%, exact %.1f%%\n",
		100*fraction.Estimate, 100*float64(trueMatches)/float64(stats.Distinct))
	fmt.Printf("estimated count: %.0f distinct flows [%.0f, %.0f] (exact %d)\n",
		subset.Estimate, subset.Low, subset.High, trueMatches)
}

func atoiSafe(s string) int {
	n := 0
	for _, r := range s {
		if r < '0' || r > '9' {
			return 256
		}
		n = n*10 + int(r-'0')
	}
	return n
}
