// Emailaudit: the paper's second dataset scenario. Mail gateways at several
// data centers each observe part of an organization's e-mail traffic; a
// compliance dashboard at the coordinator keeps a random sample of the
// distinct sender→recipient pairs, so it can answer questions like "how many
// distinct communication relationships does user X participate in?" without
// shipping every message to one place.
//
//	go run ./examples/emailaudit
package main

import (
	"fmt"
	"log"
	"strings"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/distribute"
	"repro/internal/estimate"
	"repro/internal/hashing"
	"repro/internal/stream"
)

func main() {
	const (
		gateways   = 6
		sampleSize = 300
		seed       = 11
	)

	// A scaled-down Enron-like stream of sender→recipient pairs.
	spec := dataset.Enron(0.05, seed) // ~78k messages, ~18.7k distinct pairs
	messages := spec.Generate()
	stats := stream.Summarize(messages)

	hasher := hashing.NewMurmur2(seed)
	system := core.NewSystem(gateways, sampleSize, hasher)

	// Mail is sharded across gateways round-robin (the paper's third
	// distribution policy); the sample is identical regardless of policy,
	// only the message cost changes.
	arrivals := distribute.Apply(messages, distribute.NewRoundRobin(gateways))
	metrics, err := system.Runner(0, 0).RunSequential(arrivals)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("audited %d e-mails covering %d distinct sender->recipient pairs\n",
		stats.Elements, stats.Distinct)
	fmt.Printf("gateway-to-coordinator traffic: %d messages (%.3f per e-mail)\n\n",
		metrics.TotalMessages(), float64(metrics.TotalMessages())/float64(stats.Elements))

	// Estimate how concentrated communication is: how many distinct pairs
	// involve the busiest simulated sender prefix ("user0")? The predicate
	// is only supplied now, at query time.
	senderPrefix := "user0"
	involvesPrefix := func(pair string) bool {
		sender, _, _ := strings.Cut(pair, "->")
		return strings.HasPrefix(sender, senderPrefix)
	}
	coordinator := system.Coordinator.(*core.InfiniteCoordinator)
	subset, err := estimate.SubsetCount(metrics.FinalSample, sampleSize, coordinator.Threshold(), involvesPrefix)
	if err != nil {
		log.Fatal(err)
	}
	fraction, _ := estimate.Fraction(metrics.FinalSample, involvesPrefix)

	exact := 0
	for _, pair := range stream.DistinctKeys(messages) {
		if involvesPrefix(pair) {
			exact++
		}
	}
	fmt.Printf("distinct pairs with sender prefix %q:\n", senderPrefix)
	fmt.Printf("  sample-based estimate: %.0f [%.0f, %.0f] (%.2f%% of pairs)\n",
		subset.Estimate, subset.Low, subset.High, 100*fraction.Estimate)
	fmt.Printf("  exact:                 %d (%.2f%% of %d distinct pairs)\n",
		exact, 100*float64(exact)/float64(stats.Distinct), stats.Distinct)

	// Because the sample is over *distinct* pairs, a single chatty pair that
	// sends thousands of messages does not get over-represented — compare
	// against a naive sample of raw messages.
	naiveCounts := map[string]int{}
	for i, m := range messages {
		if i%(len(messages)/sampleSize+1) == 0 { // systematic sample of occurrences
			naiveCounts[m.Key]++
		}
	}
	fmt.Printf("\nnaive occurrence sample holds %d pairs for the same budget (duplicates waste space)\n",
		len(naiveCounts))
}
