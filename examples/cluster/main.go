// Cluster walkthrough: scale the deployable sampler from one coordinator to
// a sharded cluster. Four coordinator shards listen on localhost, sites
// ingest over TCP with the batched binary codec, and a query-time merge
// unions the per-shard bottom-s sketches into the exact global sample.
//
//	go run ./examples/cluster
package main

import (
	"fmt"
	"log"
	"sync"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/distribute"
	"repro/internal/hashing"
	"repro/internal/netsim"
	"repro/internal/stream"
	"repro/internal/wire"
)

func main() {
	const (
		shards     = 4  // C: coordinator shards, each a full protocol instance
		sites      = 3  // k: monitoring sites
		sampleSize = 12 // s: bottom-s sample size per shard and after merging
		seed       = 42
	)

	// 1. A synthetic stream: 60,000 observations over ~8,000 distinct keys,
	//    spread over the sites uniformly at random.
	elements := dataset.Uniform(60000, 8000, seed).Generate()
	arrivals := distribute.Apply(elements, distribute.NewRandom(sites, seed))
	perSite := make([][]stream.Arrival, sites)
	for _, a := range arrivals {
		perSite[a.Site] = append(perSite[a.Site], a)
	}

	// 2. Every node shares one hash function; the router derives the shard
	//    partition from it, so all sites and query clients agree on which
	//    shard owns which key without any coordination.
	hasher := hashing.NewMurmur2(seed)
	router := cluster.NewShardRouter(shards, hasher)

	// 3. Start the cluster: C independent infinite-window coordinators, one
	//    TCP listener each (ephemeral localhost ports here; fixed ports via
	//    "host:port" in a real deployment).
	srv, err := cluster.Listen("127.0.0.1:0", shards, func(int) netsim.CoordinatorNode {
		return core.NewInfiniteCoordinator(sampleSize)
	})
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	fmt.Printf("cluster of %d shards listening on %v\n", shards, srv.Addrs())

	// 4. Each site dials every shard and routes each observation to the
	//    shard owning its key. The binary codec plus 64-offer batches
	//    amortize syscalls and encoding over many offers per frame, and the
	//    pipeline window lets up to 8 batches stream per connection before
	//    their replies come back (Flush/Close drain the window, so nothing
	//    is lost at shutdown).
	opts := wire.Options{Codec: wire.CodecBinary, BatchSize: 64, Window: wire.DefaultWindow}
	var wg sync.WaitGroup
	for site := 0; site < sites; site++ {
		id := site
		client, err := cluster.DialSites(srv.Addrs(), router, func(int) netsim.SiteNode {
			return core.NewInfiniteSite(id, hasher)
		}, opts)
		if err != nil {
			log.Fatal(err)
		}
		wg.Add(1)
		go func(client *cluster.SiteClient, share []stream.Arrival) {
			defer wg.Done()
			for _, a := range share {
				if err := client.Observe(a.Key, a.Slot); err != nil {
					log.Fatal(err)
				}
			}
			if err := client.Close(); err != nil { // flushes the last batch
				log.Fatal(err)
			}
		}(client, perSite[site])
	}
	wg.Wait()

	// 5. Query time: fan out to every shard, union the bottom-s sketches,
	//    keep the s smallest hashes — exactly the sample one big coordinator
	//    over the whole stream would hold.
	merged, err := cluster.Query(srv.Addrs(), sampleSize, wire.CodecBinary)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nmerged distinct sample of size %d:\n", len(merged))
	for _, e := range merged {
		fmt.Printf("  %-12s  hash=%.6f\n", e.Key, e.Hash)
	}

	// 6. The merged sample feeds the KMV estimator for cluster-wide counts.
	est, err := cluster.DistinctCount(sampleSize, srv.ShardSamples()...)
	if err != nil {
		log.Fatal(err)
	}
	stats := stream.Summarize(elements)
	fmt.Printf("\ntrue distinct elements: %d\n", stats.Distinct)
	fmt.Printf("estimated from merged sample: %.0f (95%% CI %.0f – %.0f)\n",
		est.Estimate, est.Low, est.High)

	// 7. Sanity: the merge is exact, and the cluster barely talked.
	oracle := core.NewReference(sampleSize, hasher)
	oracle.ObserveAll(stream.Keys(elements))
	fmt.Printf("matches centralized oracle: %v\n", oracle.SameSample(merged))
	offers, replies, _ := srv.Stats()
	fmt.Printf("messages exchanged: %d (%.2f%% of the stream length; per-shard offers %v)\n",
		offers+replies, 100*float64(offers+replies)/float64(stats.Elements), srv.ShardStats())
}
