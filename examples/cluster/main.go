// Cluster walkthrough: scale the deployable sampler from one coordinator to
// a sharded, replicated cluster — kill a primary mid-ingest to watch it fail
// over, and reshard the cluster live to watch it grow. Four coordinator
// shards run as replica groups (one primary plus one warm replica each),
// sites ingest over TCP with the batched binary codec, a shard primary dies
// halfway through the stream, the sites promote its replica and replay their
// unacknowledged offers — and while the second half streams, shard 1's
// hash-prefix range is split in two: a fifth shard group spins up, warms
// from one snapshot frame, the sites flip their routing tables mid-flight,
// and afterwards the two ranges are merged back. The query-time merge still
// reconstructs the exact global sample through all of it.
//
//	go run ./examples/cluster
package main

import (
	"fmt"
	"log"
	"sync"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/distribute"
	"repro/internal/hashing"
	"repro/internal/netsim"
	"repro/internal/replica"
	"repro/internal/stream"
	"repro/internal/wire"
)

func main() {
	const (
		shards     = 4  // C: coordinator shards, each a full protocol instance
		replicas   = 1  // R: warm replicas per shard
		sites      = 3  // k: monitoring sites
		sampleSize = 12 // s: bottom-s sample size per shard and after merging
		seed       = 42
	)

	// 1. A synthetic stream: 60,000 observations over ~8,000 distinct keys,
	//    spread over the sites uniformly at random.
	elements := dataset.Uniform(60000, 8000, seed).Generate()
	arrivals := distribute.Apply(elements, distribute.NewRandom(sites, seed))
	perSite := make([][]stream.Arrival, sites)
	for _, a := range arrivals {
		perSite[a.Site] = append(perSite[a.Site], a)
	}

	// 2. Every node shares one hash function; the router derives the shard
	//    partition from it, so all sites and query clients agree on which
	//    shard owns which key without any coordination.
	hasher := hashing.NewMurmur2(seed)
	router := cluster.NewShardRouter(shards, hasher)

	// 3. Start the cluster: C replica groups, each 1 + R independent
	//    infinite-window coordinators with their own TCP listeners. The
	//    coordinator's whole state is its bottom-s sketch, so each primary
	//    keeps its replica warm by pushing one tiny state-sync frame per sync
	//    interval — there is no replicated log.
	srv, err := replica.Listen("127.0.0.1:0", shards, replica.Options{
		Replicas:     replicas,
		SyncInterval: 25 * time.Millisecond,
		Codec:        wire.CodecBinary,
		// The shared routing hash lets coordinators filter sample entries by
		// hash-prefix range — the primitive online resharding is built on.
		RouteHash: router.RouteHash,
	}, func(int, int) netsim.CoordinatorNode {
		return core.NewInfiniteCoordinator(sampleSize)
	})
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	groups := srv.GroupAddrs()
	fmt.Printf("cluster of %d shards × %d members listening:\n", shards, replicas+1)
	for shard, members := range groups {
		fmt.Printf("  shard %d: %v\n", shard, members)
	}

	// 4. Each site dials every shard's current primary and routes each
	//    observation to the shard owning its key; binary codec, 64-offer
	//    batches, pipeline window 8 (see the pipelined-ingest example).
	opts := wire.Options{Codec: wire.CodecBinary, BatchSize: 64, Window: wire.DefaultWindow}
	clients := make([]*cluster.SiteClient, sites)
	for site := 0; site < sites; site++ {
		id := site
		clients[site], err = cluster.DialGroups(groups, router, func(int) netsim.SiteNode {
			return core.NewInfiniteSite(id, hasher)
		}, opts)
		if err != nil {
			log.Fatal(err)
		}
	}
	ingest := func(half int) {
		var wg sync.WaitGroup
		for site := 0; site < sites; site++ {
			wg.Add(1)
			go func(site int) {
				defer wg.Done()
				mine := perSite[site]
				from, to := 0, len(mine)/2
				if half == 1 {
					from, to = len(mine)/2, len(mine)
				}
				for _, a := range mine[from:to] {
					if err := clients[site].Observe(a.Key, a.Slot); err != nil {
						log.Fatal(err)
					}
				}
				if err := clients[site].Flush(); err != nil {
					log.Fatal(err)
				}
			}(site)
		}
		wg.Wait()
	}

	// 5. Ingest the first half, then kill shard 0's primary. (The flush +
	//    forced sync bounds what the crash can lose to exactly nothing; in
	//    production the loss bound is one sync interval of acknowledged
	//    offers — everything unacknowledged is replayed by the sites.)
	ingest(0)
	if err := srv.SyncNow(); err != nil {
		log.Fatal(err)
	}
	killed, err := srv.KillPrimary(0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nkilled shard 0 member %d mid-ingest; continuing...\n", killed)

	// 6. The second half streams through the failure — and through a live
	//    reshard. Each site's next offer to shard 0 hits a dead connection,
	//    probes the primary, promotes the replica (deterministic epoch, so
	//    all sites converge on the same new primary), replays its unacked
	//    window, and carries on. Meanwhile the reshard driver splits shard
	//    1's range: a fifth replica group starts, warms from one snapshot
	//    frame of shard 1's bottom-s sample, every site flips its routing
	//    table at its next operation boundary, and the donor prunes the
	//    handed-off range.
	rs := cluster.NewResharder(srv, router.Table(), wire.CodecBinary)
	rs.Register(clients...)
	splitDone := make(chan *cluster.ReshardReport, 1)
	go func() {
		mid, err := rs.Table().SplitPoint(1, 0.5)
		if err != nil {
			log.Fatal(err)
		}
		rep, err := rs.Split(1, mid)
		if err != nil {
			log.Fatal(err)
		}
		splitDone <- rep
	}()
	ingest(1)
	rep := awaitPlan(splitDone, clients)
	fmt.Printf("split shard 1 live: range [%#x, %#x) moved to new shard %d (v%d, %d+%d sample entries shipped, cutover stalled sites %v)\n",
		rep.Lo, rep.Hi, rep.Successor, rep.Version, rep.WarmEntries, rep.SettleEntries, rep.CutoverStall.Round(time.Microsecond))

	// 7. Merge the split ranges back (say the traffic spike passed): the
	//    surviving shard absorbs the range and the sample, the extra group
	//    retires, and the sites drop their connections to it.
	mergeDone := make(chan *cluster.ReshardReport, 1)
	go func() {
		rep, err := rs.MergeAt(rs.Table().RangeIndexOf(1))
		if err != nil {
			log.Fatal(err)
		}
		mergeDone <- rep
	}()
	rep = awaitPlan(mergeDone, clients)
	fmt.Printf("merged it back: shard %d retired (v%d)\n", rep.Donor, rep.Version)

	for site, c := range clients {
		if n, stall := c.Failovers(); n > 0 {
			fmt.Printf("site %d failed over %d time(s), stalled %v\n", site, n, stall.Round(time.Microsecond))
		}
		if n, stall := c.ReshardStalls(); n > 0 {
			fmt.Printf("site %d applied %d route update(s), stalled %v\n", site, n, stall.Round(time.Microsecond))
		}
		if err := c.Close(); err != nil {
			log.Fatal(err)
		}
		clients[site] = nil
	}
	fmt.Printf("shard 0 primary is now member %d (epochs %v)\n", srv.PrimaryIndex(0), srv.Epochs(0))

	// 8. Query time: fan out to every live shard's current primary (retired
	//    slots are skipped), union the bottom-s sketches, keep the s
	//    smallest hashes — exactly the sample one big coordinator over the
	//    whole stream would hold, crash and reshards notwithstanding.
	merged, err := cluster.QueryGroups(srv.GroupAddrs(), sampleSize, wire.CodecBinary)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nmerged distinct sample of size %d:\n", len(merged))
	for _, e := range merged {
		fmt.Printf("  %-12s  hash=%.6f\n", e.Key, e.Hash)
	}

	// 9. The merged sample feeds the KMV estimator for cluster-wide counts.
	shardSamples, err := srv.PrimarySamples()
	if err != nil {
		log.Fatal(err)
	}
	est, err := cluster.DistinctCount(sampleSize, shardSamples...)
	if err != nil {
		log.Fatal(err)
	}
	stats := stream.Summarize(elements)
	fmt.Printf("\ntrue distinct elements: %d\n", stats.Distinct)
	fmt.Printf("estimated from merged sample: %.0f (95%% CI %.0f – %.0f)\n",
		est.Estimate, est.Low, est.High)

	// 10. Sanity: the merge is exact despite the crash and both reshards,
	//     and the cluster barely talked.
	oracle := core.NewReference(sampleSize, hasher)
	oracle.ObserveAll(stream.Keys(elements))
	fmt.Printf("matches centralized oracle: %v\n", oracle.SameSample(merged))
	offers, replies, _ := srv.Stats()
	fmt.Printf("messages exchanged: %d (%.2f%% of the stream length)\n",
		offers+replies, 100*float64(offers+replies)/float64(stats.Elements))
}

// awaitPlan waits for a background reshard plan while pumping the (by now
// idle) site clients from their owning goroutine: cutovers are cooperative,
// so sites must keep reaching an operation boundary for the flip to land.
// While ingest is still running the pump never fires — Observe applies
// pending updates for free.
func awaitPlan(done chan *cluster.ReshardReport, clients []*cluster.SiteClient) *cluster.ReshardReport {
	for {
		select {
		case rep := <-done:
			return rep
		default:
			for _, c := range clients {
				if err := c.ApplyRouteUpdates(); err != nil {
					log.Fatal(err)
				}
			}
			time.Sleep(200 * time.Microsecond)
		}
	}
}
