// Cluster walkthrough on the public dds API: a sharded, replicated sampler
// cluster survives a primary kill mid-ingest and grows live through an
// online shard split — all through dds.Serve/dds.Open, no internal imports.
// Four coordinator shards run as replica groups (one primary plus one warm
// replica each), three sites ingest concurrently with the pipelined binary
// transport, a shard primary dies halfway through the stream, the sites
// promote its replica and replay their unacknowledged offers — and while the
// second half streams, shard 1's hash-prefix range is split in two: a fifth
// shard group spins up, warms from one snapshot frame, the clients flip
// their routing tables mid-flight, and afterwards the ranges are merged
// back. The query-time merge reconstructs the same global sample through all
// of it.
//
//	go run ./examples/cluster
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"sync"
	"time"

	"repro/dds"
)

const (
	shards     = 4  // C: coordinator shards, each a full protocol instance
	sites      = 3  // k: monitoring sites
	sampleSize = 12 // s: bottom-s sample size per shard and after merging
	elements   = 60000
	distinct   = 8000
)

func main() {
	ctx := context.Background()

	// 1. The cluster: C replica groups, each 1 + 1 independent coordinators
	//    with their own TCP listeners. A coordinator's whole state is its
	//    bottom-s sketch, so each primary keeps its replica warm by pushing
	//    one tiny snapshot frame per sync interval — there is no log.
	cluster, err := dds.Serve(ctx, dds.Config{Listen: "127.0.0.1:0", Shards: shards, SampleSize: sampleSize},
		dds.WithReplicas(1), dds.WithSyncInterval(25*time.Millisecond))
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()
	fmt.Printf("cluster of %d shards × 2 members listening:\n", shards)
	for shard, members := range cluster.Groups() {
		fmt.Printf("  shard %d: %v\n", shard, members)
	}

	// 2. The stream, pre-split across the sites.
	rng := rand.New(rand.NewSource(42))
	perSite := make([][]string, sites)
	for i := 0; i < elements; i++ {
		site := rng.Intn(sites)
		perSite[site] = append(perSite[site], fmt.Sprintf("user-%05d", rng.Intn(distinct)))
	}

	// 3. One client per site: each dials every shard's current primary and
	//    routes each observation to the shard owning its key (64-offer
	//    batches, pipeline window 8). Attach registers them with the reshard
	//    driver so live cutovers can flip their routing tables.
	clients := make([]*dds.Client, sites)
	for site := range clients {
		clients[site], err = dds.Open(ctx, dds.Config{Coordinators: cluster.Groups(), SiteID: site, SampleSize: sampleSize},
			dds.WithBatch(64), dds.WithPipelining(8))
		if err != nil {
			log.Fatal(err)
		}
	}
	cluster.Attach(clients...)

	ingest := func(half int) {
		var wg sync.WaitGroup
		for site := 0; site < sites; site++ {
			wg.Add(1)
			go func(site int) {
				defer wg.Done()
				mine := perSite[site]
				from, to := 0, len(mine)/2
				if half == 1 {
					from, to = len(mine)/2, len(mine)
				}
				for _, key := range mine[from:to] {
					if err := clients[site].Offer(key, 0); err != nil {
						log.Fatal(err)
					}
				}
				if err := clients[site].Flush(); err != nil {
					log.Fatal(err)
				}
			}(site)
		}
		wg.Wait()
	}

	// 4. Ingest the first half, then kill shard 0's primary. (The flush +
	//    forced sync bounds what the crash can lose to exactly nothing; in
	//    production the loss bound is one sync interval of acknowledged
	//    offers — everything unacknowledged is replayed by the sites.)
	ingest(0)
	if err := cluster.SyncNow(); err != nil {
		log.Fatal(err)
	}
	killed, err := cluster.KillPrimary(0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nkilled shard 0 member %d mid-ingest; continuing...\n", killed)

	// 5. The second half streams through the failure — and through a live
	//    reshard: shard 1's range splits, a fifth replica group warms from
	//    one snapshot frame, every client flips at its next operation
	//    boundary, and the donor prunes the handed-off range.
	splitDone := make(chan *dds.ReshardReport, 1)
	go func() {
		rep, err := cluster.Split(1, 0.5)
		if err != nil {
			log.Fatal(err)
		}
		splitDone <- rep
	}()
	ingest(1)
	rep := awaitPlan(splitDone, clients)
	fmt.Printf("split shard 1 live: range [%#x, %#x) moved to new shard %d (v%d, %d+%d snapshot entries shipped, cutover stalled clients %v)\n",
		rep.Lo, rep.Hi, rep.Successor, rep.Version, rep.WarmEntries, rep.SettleEntries, rep.CutoverStall.Round(time.Microsecond))

	// 6. Merge the split ranges back (say the traffic spike passed): the
	//    surviving shard absorbs the range and the state, the extra group
	//    retires, and the clients drop their connections to it.
	mergeDone := make(chan *dds.ReshardReport, 1)
	go func() {
		rep, err := cluster.MergeAt(cluster.RangeIndexOf(1))
		if err != nil {
			log.Fatal(err)
		}
		mergeDone <- rep
	}()
	rep = awaitPlan(mergeDone, clients)
	fmt.Printf("merged it back: shard %d retired (v%d)\n", rep.Donor, rep.Version)
	fmt.Printf("shard 0 primary is now member %d (epochs %v)\n", cluster.PrimaryIndex(0), cluster.Epochs(0))

	// 7. Query time: fan out to every live shard's current primary, union
	//    the bottom-s sketches, keep the s smallest hashes — the same sample
	//    one big coordinator over the whole stream would hold, crash and
	//    reshards notwithstanding. The estimate rides on the same sketch.
	merged, err := clients[0].Query(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nmerged distinct sample of size %d:\n", len(merged))
	for _, e := range merged {
		fmt.Printf("  %-12s  hash=%.6f\n", e.Key, e.Hash)
	}
	est, err := clients[0].Estimate(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ntrue distinct elements: %d\n", countDistinct(perSite))
	fmt.Printf("estimated from merged sample: %.0f (95%% CI %.0f – %.0f)\n", est.Count, est.Low, est.High)

	// 8. Sanity: the remote query and the cluster's own primaries agree
	//    byte-identically, and the cluster barely talked.
	direct, err := cluster.Sample(0)
	if err != nil {
		log.Fatal(err)
	}
	agree := len(direct) == len(merged)
	for i := 0; agree && i < len(direct); i++ {
		agree = direct[i] == merged[i]
	}
	fmt.Printf("remote query matches cluster primaries: %v\n", agree)

	for site, c := range clients {
		if err := c.Close(); err != nil {
			log.Fatal(err)
		}
		clients[site] = nil
	}
	offers, replies, _ := cluster.Stats()
	fmt.Printf("messages exchanged: %d (%.2f%% of the stream length)\n",
		offers+replies, 100*float64(offers+replies)/float64(elements))
}

// awaitPlan waits for a background reshard plan while pumping the (by now
// idle) clients from their owning goroutines: cutovers are cooperative, so
// clients must keep reaching an operation boundary for the flip to land.
// While ingest is still running the pump never fires — Offer applies pending
// updates for free.
func awaitPlan(done chan *dds.ReshardReport, clients []*dds.Client) *dds.ReshardReport {
	for {
		select {
		case rep := <-done:
			return rep
		default:
			for _, c := range clients {
				if err := c.Flush(); err != nil {
					log.Fatal(err)
				}
			}
			time.Sleep(200 * time.Microsecond)
		}
	}
}

// countDistinct tallies the stream's true distinct count for the printout.
func countDistinct(perSite [][]string) int {
	seen := make(map[string]struct{})
	for _, keys := range perSite {
		for _, key := range keys {
			seen[key] = struct{}{}
		}
	}
	return len(seen)
}
