// Quickstart: maintain a distinct random sample over a stream observed by
// several distributed sites, then query it at the coordinator.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/distribute"
	"repro/internal/hashing"
	"repro/internal/stream"
)

func main() {
	const (
		sites      = 4  // k: number of monitoring sites
		sampleSize = 8  // s: distinct sample size at the coordinator
		seed       = 42 // reproducibility
	)

	// 1. A synthetic stream: 50,000 observations over ~5,000 distinct keys.
	elements := dataset.Uniform(50000, 5000, seed).Generate()

	// 2. Every node shares one hash function (the coordinator would normally
	//    distribute it during initialization).
	hasher := hashing.NewMurmur2(seed)

	// 3. Build the distributed system: k sites plus a coordinator.
	system := core.NewSystem(sites, sampleSize, hasher)

	// 4. Decide which site observes each element. Here each element goes to
	//    one uniformly random site.
	arrivals := distribute.Apply(elements, distribute.NewRandom(sites, seed))

	// 5. Play the stream through the simulation engine, which counts every
	//    message exchanged between the sites and the coordinator.
	metrics, err := system.Runner(0, 0).RunSequential(arrivals)
	if err != nil {
		log.Fatal(err)
	}

	// 6. Query the coordinator: a uniform random sample of the distinct
	//    elements seen so far, regardless of how often each one appeared.
	fmt.Printf("distinct sample of size %d:\n", len(metrics.FinalSample))
	for _, entry := range metrics.FinalSample {
		fmt.Printf("  %-12s  hash=%.6f\n", entry.Key, entry.Hash)
	}

	// 7. The whole point of the algorithm: very little communication.
	stats := stream.Summarize(elements)
	fmt.Printf("\nstream: %d elements, %d distinct\n", stats.Elements, stats.Distinct)
	fmt.Printf("messages exchanged: %d (%.2f%% of the stream length)\n",
		metrics.TotalMessages(), 100*float64(metrics.TotalMessages())/float64(stats.Elements))

	// Sanity: the distributed sample matches what a centralized sampler that
	// saw every element would hold.
	oracle := core.NewReference(sampleSize, hasher)
	oracle.ObserveAll(stream.Keys(elements))
	fmt.Printf("matches centralized oracle: %v\n", oracle.SameSample(metrics.FinalSample))
}
