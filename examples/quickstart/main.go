// Quickstart for the public dds API: start an embedded sampler cluster,
// ingest a stream of repeated observations over TCP, and query the uniform
// distinct sample and the distinct-count estimate — in ~40 lines, importing
// nothing but the dds package.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	"repro/dds"
)

func main() {
	ctx := context.Background()

	// 1. An embedded cluster: one coordinator shard, sample size 8.
	cluster, err := dds.Serve(ctx, dds.Config{Listen: "127.0.0.1:0", Shards: 1, SampleSize: 8})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	// 2. A site client: batched binary ingest over TCP.
	client, err := dds.Open(ctx, dds.Config{Coordinators: cluster.Groups(), SampleSize: 8}, dds.WithBatch(64))
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()

	// 3. The stream: 50,000 observations over ~5,000 distinct users. The
	//    protocol decides what to send; almost every offer costs nothing.
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 50000; i++ {
		if err := client.Offer(fmt.Sprintf("user-%04d", rng.Intn(5000)), 0); err != nil {
			log.Fatal(err)
		}
	}
	if err := client.Flush(); err != nil {
		log.Fatal(err)
	}

	// 4. Query: a uniform random sample of the distinct elements seen so
	//    far, regardless of how often each one appeared.
	sample, err := client.Query(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("distinct sample of size %d:\n", len(sample))
	for _, entry := range sample {
		fmt.Printf("  %-12s  hash=%.6f\n", entry.Key, entry.Hash)
	}

	// 5. The sample doubles as a KMV sketch: estimate the distinct count.
	est, err := client.Estimate(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nestimated distinct elements: %.0f (95%% CI %.0f – %.0f)\n", est.Count, est.Low, est.High)

	// 6. The whole point of the algorithm: very little communication.
	offers, replies, _ := cluster.Stats()
	fmt.Printf("messages exchanged: %d (%.2f%% of the stream length)\n",
		offers+replies, 100*float64(offers+replies)/50000)
}
