// Slidingwindow: continuously sample the distinct elements seen in the most
// recent w time slots across distributed sites (Chapter 4 of the paper).
// A security dashboard uses it to show "a random currently-active flow" that
// is guaranteed to be drawn uniformly from the distinct flows of the last
// window, while each probe keeps only a logarithmic number of tuples.
//
//	go run ./examples/slidingwindow
package main

import (
	"fmt"
	"log"

	"repro/internal/dataset"
	"repro/internal/distribute"
	"repro/internal/hashing"
	"repro/internal/sliding"
	"repro/internal/stream"
)

func main() {
	const (
		probes        = 10   // monitoring probes (sites)
		window        = 500  // slots: "the last 500 seconds"
		arrivalsPerTS = 5    // elements per time slot, as in the paper's setup
		seed          = 2024 // reproducibility
	)

	// An OC48-like packet stream, re-slotted so that 5 packets arrive per
	// time slot across the whole system.
	packets := stream.Reslot(dataset.OC48(0.001, seed).Generate(), arrivalsPerTS)
	stats := stream.Summarize(packets)

	hasher := hashing.NewMurmur2(seed)
	system := sliding.NewSystem(probes, window, hasher, seed)

	arrivals := distribute.Apply(packets, distribute.NewRandom(probes, seed))

	// Sample per-probe memory every 200 slots so we can show the paper's
	// Figure 5.7 behaviour: memory stays logarithmic in the window size.
	metrics, err := system.Runner(0, 200).RunSequential(arrivals)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("monitored %d packets over %d slots with %d probes, window = %d slots\n",
		stats.Elements, stats.MaxSlot, probes, window)
	fmt.Printf("total probe<->coordinator messages: %d\n\n", metrics.TotalMessages())

	fmt.Println("per-probe memory (tuples kept) over time:")
	for _, p := range metrics.Memory {
		if p.Slot%2000 == 1 || p.Slot == metrics.Memory[len(metrics.Memory)-1].Slot {
			fmt.Printf("  slot %6d: mean %5.2f, max %d\n", p.Slot, p.MeanPerSite, p.MaxPerSite)
		}
	}

	if len(metrics.FinalSample) == 1 {
		entry := metrics.FinalSample[0]
		fmt.Printf("\ncurrently sampled active flow: %s (expires at slot %d)\n", entry.Key, entry.Expiry)

		// Verify against a brute-force recomputation of the window minimum.
		last := stats.MaxSlot
		live := stream.WindowDistinct(arrivals, last, window)
		best, bestHash := "", 2.0
		for key := range live {
			if u := hasher.Unit(key); u < bestHash {
				best, bestHash = key, u
			}
		}
		fmt.Printf("brute-force window minimum:    %s\n", best)
		fmt.Printf("agreement: %v  (window holds %d distinct flows)\n", best == entry.Key, len(live))
	}
}
