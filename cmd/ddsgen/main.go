// Command ddsgen generates the synthetic datasets used throughout the
// repository and writes them in the "slot<TAB>key" stream format, so they
// can be inspected, versioned, or replayed by external tooling.
//
// Usage:
//
//	ddsgen -dataset oc48  -scale 0.01 -out oc48.tsv
//	ddsgen -dataset enron -scale 0.1  -out enron.tsv
//	ddsgen -dataset uniform -elements 100000 -distinct 20000 -out u.tsv
//	ddsgen -dataset oc48 -stats-only
//
// With -hot-fraction F (0 < F <= 1) the generated keys are deterministically
// remapped so that fraction F of them route to shard 0 of a -hot-shards-way
// uniform routing table — a routing-skewed stream for exercising reshard and
// autopilot-watcher paths without waiting for organic skew:
//
//	ddsgen -dataset uniform -elements 50000 -hot-fraction 0.8 -hot-shards 2 -out hot.tsv
package main

import (
	"flag"
	"fmt"
	"math"
	"os"

	"repro/dds"
	"repro/internal/cluster"
	"repro/internal/dataset"
	"repro/internal/hashing"
	"repro/internal/stream"
)

func main() {
	var (
		name      = flag.String("dataset", "oc48", "dataset to generate: oc48, enron, uniform, alldistinct")
		scale     = flag.Float64("scale", 0.01, "scale relative to the paper's dataset sizes (oc48/enron)")
		elements  = flag.Int("elements", 100000, "element count (uniform/alldistinct)")
		distinct  = flag.Int("distinct", 20000, "distinct count (uniform)")
		seed      = flag.Uint64("seed", 1, "generator seed")
		out       = flag.String("out", "", "output path (default stdout)")
		statsOnly = flag.Bool("stats-only", false, "print element/distinct counts instead of the stream")
		hotFrac   = flag.Float64("hot-fraction", 0, "remap this fraction of keys so they route to shard 0 of a -hot-shards uniform table (0 disables; routing-skewed streams for reshard/autopilot testing)")
		hotShards = flag.Int("hot-shards", 2, "shard count of the uniform routing table -hot-fraction skews against")
		hashSeed  = flag.Uint64("hash-seed", dds.DefaultSeed, "hash seed the -hot-fraction routing assumes (must match the cluster's -hash-seed)")
	)
	flag.Parse()
	if *hotFrac < 0 || *hotFrac > 1 {
		fmt.Fprintf(os.Stderr, "-hot-fraction %v must lie in [0, 1]\n", *hotFrac)
		os.Exit(2)
	}
	if *hotShards < 1 {
		fmt.Fprintf(os.Stderr, "-hot-shards %d must be at least 1\n", *hotShards)
		os.Exit(2)
	}

	var spec dataset.Spec
	switch *name {
	case "oc48":
		spec = dataset.OC48(*scale, *seed)
	case "enron":
		spec = dataset.Enron(*scale, *seed)
	case "uniform":
		spec = dataset.Uniform(*elements, *distinct, *seed)
	case "alldistinct":
		spec = dataset.AllDistinct(*elements, *seed)
	default:
		fmt.Fprintf(os.Stderr, "unknown dataset %q\n", *name)
		os.Exit(2)
	}

	data := spec.Generate()
	if *hotFrac > 0 {
		skewToShardZero(data, *hotFrac, *hotShards, *hashSeed)
	}
	if *statsOnly {
		st := stream.Summarize(data)
		fmt.Printf("dataset=%s elements=%d distinct=%d\n", spec.Name, st.Elements, st.Distinct)
		return
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	if err := stream.Write(w, data); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// skewToShardZero deterministically remaps a fraction of the stream's keys
// onto shard 0 of an N-shard uniform routing table: each selected key is
// replaced by its first "#i"-suffixed variant that routes there. Selection
// uses an independent hash of the key (not its routing hash), so the chosen
// set is unbiased with respect to routing, and the remapping is stable
// across runs — the same key always maps to the same variant.
func skewToShardZero(data []stream.Element, frac float64, shards int, seed uint64) {
	hasher := hashing.NewMurmur2(seed)
	router := cluster.NewShardRouter(shards, hasher)
	selected := func(key string) bool {
		if frac >= 1 {
			return true
		}
		// Decorrelate from the route hash with a different mix offset.
		return hashing.Mix64(hasher.Hash(key)+0x9e3779b97f4a7c15) <= uint64(frac*float64(math.MaxUint64))
	}
	remap := make(map[string]string)
	for i, e := range data {
		to, ok := remap[e.Key]
		if !ok {
			to = e.Key
			if selected(e.Key) {
				for probe := 0; router.Shard(to) != 0; probe++ {
					to = fmt.Sprintf("%s#%d", e.Key, probe)
				}
			}
			remap[e.Key] = to
		}
		data[i].Key = to
	}
}
