// Command ddsgen generates the synthetic datasets used throughout the
// repository and writes them in the "slot<TAB>key" stream format, so they
// can be inspected, versioned, or replayed by external tooling.
//
// Usage:
//
//	ddsgen -dataset oc48  -scale 0.01 -out oc48.tsv
//	ddsgen -dataset enron -scale 0.1  -out enron.tsv
//	ddsgen -dataset uniform -elements 100000 -distinct 20000 -out u.tsv
//	ddsgen -dataset oc48 -stats-only
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/dataset"
	"repro/internal/stream"
)

func main() {
	var (
		name      = flag.String("dataset", "oc48", "dataset to generate: oc48, enron, uniform, alldistinct")
		scale     = flag.Float64("scale", 0.01, "scale relative to the paper's dataset sizes (oc48/enron)")
		elements  = flag.Int("elements", 100000, "element count (uniform/alldistinct)")
		distinct  = flag.Int("distinct", 20000, "distinct count (uniform)")
		seed      = flag.Uint64("seed", 1, "generator seed")
		out       = flag.String("out", "", "output path (default stdout)")
		statsOnly = flag.Bool("stats-only", false, "print element/distinct counts instead of the stream")
	)
	flag.Parse()

	var spec dataset.Spec
	switch *name {
	case "oc48":
		spec = dataset.OC48(*scale, *seed)
	case "enron":
		spec = dataset.Enron(*scale, *seed)
	case "uniform":
		spec = dataset.Uniform(*elements, *distinct, *seed)
	case "alldistinct":
		spec = dataset.AllDistinct(*elements, *seed)
	default:
		fmt.Fprintf(os.Stderr, "unknown dataset %q\n", *name)
		os.Exit(2)
	}

	data := spec.Generate()
	if *statsOnly {
		st := stream.Summarize(data)
		fmt.Printf("dataset=%s elements=%d distinct=%d\n", spec.Name, st.Elements, st.Distinct)
		return
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	if err := stream.Write(w, data); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
