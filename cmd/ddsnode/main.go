// Command ddsnode runs one node of a real (non-simulated) deployment of the
// distinct sampler over TCP: a coordinator (single or sharded cluster), a
// site replaying a stream file, or a one-shot query client. Stream files use
// the "slot<TAB>key" format produced by cmd/ddsgen.
//
// A complete single-coordinator deployment in three terminals:
//
//	ddsnode -role coordinator -listen 127.0.0.1:7070 -sample 20
//	ddsgen  -dataset enron -scale 0.01 -out enron.tsv
//	ddsnode -role site -id 0 -coordinator 127.0.0.1:7070 -stream enron.tsv
//	ddsnode -role query -coordinator 127.0.0.1:7070
//
// A 4-shard cluster with pipelined batched binary ingest (shard c listens on
// port 7070+c; sites and query clients list all shard addresses; -pipeline 8
// lets up to 8 batch frames stream per connection before their replies come
// back — see the README's pipelined-ingest section for tuning):
//
//	ddsnode -role cluster-coordinator -shards 4 -listen 127.0.0.1:7070 -sample 20
//	ddsnode -role site -id 0 -coordinator 127.0.0.1:7070,127.0.0.1:7071,127.0.0.1:7072,127.0.0.1:7073 \
//	        -codec binary -batch 64 -pipeline 8 -stream enron.tsv
//	ddsnode -role query -sample 20 -coordinator 127.0.0.1:7070,127.0.0.1:7071,127.0.0.1:7072,127.0.0.1:7073
//
// All nodes of one deployment must share -hash-seed (and -window, if set),
// and a query's -sample must not exceed the coordinators' -sample: each
// shard only retains its bottom-s, so merges are exact only up to size s.
// (-window is the sliding-window length in slots, a protocol parameter;
// -pipeline is the transport's batch-frames-in-flight credit window.)
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/hashing"
	"repro/internal/netsim"
	"repro/internal/sliding"
	"repro/internal/stream"
	"repro/internal/wire"
)

func main() {
	var (
		role        = flag.String("role", "coordinator", "coordinator, cluster-coordinator, site, or query")
		listen      = flag.String("listen", "127.0.0.1:7070", "coordinator listen address (cluster shard c binds port+c)")
		coordinator = flag.String("coordinator", "127.0.0.1:7070", "comma-separated coordinator shard addresses (site/query roles)")
		shards      = flag.Int("shards", 1, "number of coordinator shards (cluster-coordinator role)")
		id          = flag.Int("id", 0, "site id (site role)")
		sample      = flag.Int("sample", 20, "sample size s per shard (infinite-window); also the merged query size, which must not exceed the coordinators' s")
		window      = flag.Int64("window", 0, "window size in slots; > 0 switches to the sliding-window protocol")
		streamPath  = flag.String("stream", "", "stream file to replay (site role); '-' reads stdin")
		hashSeed    = flag.Uint64("hash-seed", 20130501, "shared hash-function seed (must match on all nodes)")
		codecName   = flag.String("codec", "json", "wire codec: json or binary (site/query roles)")
		batch       = flag.Int("batch", 1, "offers per batch frame; > 1 enables batched transport (site role)")
		pipeline    = flag.Int("pipeline", 0, "pipelined ingest: max batch frames in flight per connection; 0 or 1 = synchronous request/response (site role; try 8)")
	)
	flag.Parse()

	codec, err := wire.ParseCodec(*codecName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	switch *role {
	case "coordinator":
		runCoordinator(*listen, 1, *sample, *window)
	case "cluster-coordinator":
		runCoordinator(*listen, *shards, *sample, *window)
	case "site":
		runSite(splitAddrs(*coordinator), *id, *window, *streamPath, *hashSeed, wire.Options{Codec: codec, BatchSize: *batch, Window: *pipeline})
	case "query":
		runQuery(splitAddrs(*coordinator), *sample, *window, codec)
	default:
		fmt.Fprintf(os.Stderr, "unknown role %q\n", *role)
		os.Exit(2)
	}
}

func splitAddrs(list string) []string {
	var addrs []string
	for _, a := range strings.Split(list, ",") {
		if a = strings.TrimSpace(a); a != "" {
			addrs = append(addrs, a)
		}
	}
	return addrs
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}

func runCoordinator(listen string, shards, sampleSize int, window int64) {
	newCoord := func(int) netsim.CoordinatorNode { return core.NewInfiniteCoordinator(sampleSize) }
	kind := fmt.Sprintf("infinite-window (s=%d per shard)", sampleSize)
	if window > 0 {
		newCoord = func(int) netsim.CoordinatorNode { return sliding.NewCoordinator() }
		kind = fmt.Sprintf("sliding-window (w=%d slots)", window)
	}
	srv, err := cluster.Listen(listen, shards, newCoord)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("%d-shard %s coordinator\n", srv.Shards(), kind)
	for shard, addr := range srv.Addrs() {
		fmt.Printf("  shard %d listening on %s\n", shard, addr)
	}
	fmt.Println("press Ctrl-C to stop")

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	<-stop
	offers, replies, queries := srv.Stats()
	fmt.Printf("\nshutting down: %d offers, %d replies, %d queries served", offers, replies, queries)
	if shards > 1 {
		fmt.Printf(" (per-shard offers: %v)", srv.ShardStats())
	}
	fmt.Println()
	mergeSize := sampleSize
	if window > 0 {
		mergeSize = 1 // the window sample is the single minimum across shards
	}
	fmt.Println("final merged sample:")
	for _, e := range srv.MergedSample(mergeSize) {
		fmt.Printf("  %-40s h=%.6f\n", e.Key, e.Hash)
	}
	_ = srv.Close()
}

func runSite(addrs []string, id int, window int64, streamPath string, hashSeed uint64, opts wire.Options) {
	if streamPath == "" {
		fmt.Fprintln(os.Stderr, "site role requires -stream")
		os.Exit(2)
	}
	if len(addrs) == 0 {
		fmt.Fprintln(os.Stderr, "site role requires at least one -coordinator address")
		os.Exit(2)
	}
	in := os.Stdin
	if streamPath != "-" {
		f, err := os.Open(streamPath)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		in = f
	}
	elements, err := stream.Read(in)
	if err != nil {
		fatal(err)
	}

	hasher := hashing.NewMurmur2(hashSeed)
	router := cluster.NewShardRouter(len(addrs), hasher)
	newSite := func(int) netsim.SiteNode { return core.NewInfiniteSite(id, hasher) }
	if window > 0 {
		newSite = func(shard int) netsim.SiteNode {
			return sliding.NewSite(id, hasher, window, uint64(id*len(addrs)+shard)+1)
		}
	}
	client, err := cluster.DialSites(addrs, router, newSite, opts)
	if err != nil {
		fatal(err)
	}
	defer client.Close()

	lastSlot := int64(-1)
	for _, e := range elements {
		if window > 0 && lastSlot >= 0 && e.Slot > lastSlot {
			// Close out every slot between arrivals so expiries fire.
			for slot := lastSlot; slot < e.Slot; slot++ {
				if err := client.EndSlot(slot); err != nil {
					fatal(err)
				}
			}
		}
		if err := client.Observe(e.Key, e.Slot); err != nil {
			fatal(err)
		}
		lastSlot = e.Slot
	}
	if window > 0 && lastSlot >= 0 {
		if err := client.EndSlot(lastSlot); err != nil {
			fatal(err)
		}
	}
	if err := client.Flush(); err != nil {
		fatal(err)
	}
	mode := "sync"
	if opts.Window > 1 {
		mode = fmt.Sprintf("pipelined window %d", opts.Window)
	}
	fmt.Printf("site %d replayed %d elements to %d shard(s) [%s, batch %d, %s]: %d offers sent, %d replies received\n",
		id, len(elements), len(addrs), opts.Codec, opts.BatchSize, mode, client.MessagesSent(), client.MessagesReceived())
}

func runQuery(addrs []string, sampleSize int, window int64, codec wire.Codec) {
	if len(addrs) == 0 {
		fmt.Fprintln(os.Stderr, "query role requires at least one -coordinator address")
		os.Exit(2)
	}
	// Sliding-window shards each hold at most one live entry; the global
	// window sample is the single minimum across them, and the KMV
	// distinct-count estimator does not apply.
	if window > 0 {
		sampleSize = 1
	}
	entries, err := cluster.Query(addrs, sampleSize, codec)
	if err != nil {
		fatal(err)
	}
	scope := "distinct sample"
	if window > 0 {
		scope = "window sample"
	}
	if len(addrs) > 1 {
		scope = fmt.Sprintf("merged %s across %d shards", scope, len(addrs))
	}
	fmt.Printf("%s (%d entries):\n", scope, len(entries))
	for _, e := range entries {
		fmt.Printf("  %-40s h=%.6f\n", e.Key, e.Hash)
	}
	if window > 0 || len(entries) == 0 {
		return
	}
	est, err := cluster.DistinctCount(sampleSize, entries)
	switch {
	case err != nil:
		fmt.Printf("distinct-count estimate unavailable: %v\n", err)
	case len(entries) < sampleSize:
		// The sample holds the whole distinct population: exact answer.
		fmt.Printf("exact distinct elements: %.0f (population smaller than s=%d)\n", est.Estimate, sampleSize)
	default:
		fmt.Printf("estimated distinct elements: %.0f  (95%% CI %.0f – %.0f)\n",
			est.Estimate, est.Low, est.High)
	}
}
