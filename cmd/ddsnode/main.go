// Command ddsnode runs one node of a real (non-simulated) deployment of the
// distinct sampler over TCP: a coordinator, a site replaying a stream file,
// or a one-shot query client. Stream files use the "slot<TAB>key" format
// produced by cmd/ddsgen.
//
// A complete local deployment in three terminals:
//
//	ddsnode -role coordinator -listen 127.0.0.1:7070 -sample 20
//	ddsgen  -dataset enron -scale 0.01 -out enron.tsv
//	ddsnode -role site -id 0 -coordinator 127.0.0.1:7070 -stream enron.tsv
//	ddsnode -role query -coordinator 127.0.0.1:7070
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"repro/internal/core"
	"repro/internal/hashing"
	"repro/internal/sliding"
	"repro/internal/stream"
	"repro/internal/wire"
)

func main() {
	var (
		role        = flag.String("role", "coordinator", "coordinator, site, or query")
		listen      = flag.String("listen", "127.0.0.1:7070", "coordinator listen address")
		coordinator = flag.String("coordinator", "127.0.0.1:7070", "coordinator address (site/query roles)")
		id          = flag.Int("id", 0, "site id (site role)")
		sample      = flag.Int("sample", 20, "sample size s (infinite-window coordinator)")
		window      = flag.Int64("window", 0, "window size in slots; > 0 switches to the sliding-window protocol")
		streamPath  = flag.String("stream", "", "stream file to replay (site role); '-' reads stdin")
		hashSeed    = flag.Uint64("hash-seed", 20130501, "shared hash-function seed (must match on all nodes)")
	)
	flag.Parse()

	switch *role {
	case "coordinator":
		runCoordinator(*listen, *sample, *window)
	case "site":
		runSite(*coordinator, *id, *window, *streamPath, *hashSeed)
	case "query":
		runQuery(*coordinator)
	default:
		fmt.Fprintf(os.Stderr, "unknown role %q\n", *role)
		os.Exit(2)
	}
}

func runCoordinator(listen string, sampleSize int, window int64) {
	var srv *wire.CoordinatorServer
	if window > 0 {
		srv = wire.NewCoordinatorServer(sliding.NewCoordinator())
		fmt.Printf("sliding-window coordinator (w=%d slots)\n", window)
	} else {
		srv = wire.NewCoordinatorServer(core.NewInfiniteCoordinator(sampleSize))
		fmt.Printf("infinite-window coordinator (s=%d)\n", sampleSize)
	}
	addr, err := srv.Listen(listen)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("listening on %s — press Ctrl-C to stop\n", addr)

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	<-stop
	offers, replies, queries := srv.Stats()
	fmt.Printf("\nshutting down: %d offers, %d replies, %d queries served\n", offers, replies, queries)
	fmt.Println("final sample:")
	for _, e := range srv.Sample() {
		fmt.Printf("  %-40s h=%.6f\n", e.Key, e.Hash)
	}
	_ = srv.Close()
}

func runSite(coordinator string, id int, window int64, streamPath string, hashSeed uint64) {
	if streamPath == "" {
		fmt.Fprintln(os.Stderr, "site role requires -stream")
		os.Exit(2)
	}
	in := os.Stdin
	if streamPath != "-" {
		f, err := os.Open(streamPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		in = f
	}
	elements, err := stream.Read(in)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	hasher := hashing.NewMurmur2(hashSeed)
	var node interface {
		ID() int
	}
	var client *wire.SiteClient
	if window > 0 {
		site := sliding.NewSite(id, hasher, window, uint64(id)+1)
		node = site
		client, err = wire.DialSite(site, coordinator)
	} else {
		site := core.NewInfiniteSite(id, hasher)
		node = site
		client, err = wire.DialSite(site, coordinator)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer client.Close()

	lastSlot := int64(-1)
	for _, e := range elements {
		if window > 0 && lastSlot >= 0 && e.Slot > lastSlot {
			// Close out every slot between arrivals so expiries fire.
			for slot := lastSlot; slot < e.Slot; slot++ {
				if err := client.EndSlot(slot); err != nil {
					fmt.Fprintln(os.Stderr, err)
					os.Exit(1)
				}
			}
		}
		if err := client.Observe(e.Key, e.Slot); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		lastSlot = e.Slot
	}
	if window > 0 && lastSlot >= 0 {
		if err := client.EndSlot(lastSlot); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	fmt.Printf("site %d replayed %d elements: %d offers sent, %d replies received\n",
		node.ID(), len(elements), client.MessagesSent(), client.MessagesReceived())
}

func runQuery(coordinator string) {
	entries, err := wire.Query(coordinator)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("distinct sample (%d entries):\n", len(entries))
	for _, e := range entries {
		fmt.Printf("  %-40s h=%.6f\n", e.Key, e.Hash)
	}
}
