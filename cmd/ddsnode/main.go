// Command ddsnode runs one node of a real (non-simulated) deployment of the
// distinct sampler over TCP: a coordinator (single, sharded cluster, or
// replicated cluster), a standalone replica, a site replaying a stream file,
// or a one-shot query client. Stream files use the "slot<TAB>key" format
// produced by cmd/ddsgen.
//
// A complete single-coordinator deployment in three terminals:
//
//	ddsnode -role coordinator -listen 127.0.0.1:7070 -sample 20
//	ddsgen  -dataset enron -scale 0.01 -out enron.tsv
//	ddsnode -role site -id 0 -coordinator 127.0.0.1:7070 -stream enron.tsv
//	ddsnode -role query -coordinator 127.0.0.1:7070
//
// A 4-shard cluster with pipelined batched binary ingest (shard c listens on
// port 7070+c; sites and query clients list all shard addresses; -pipeline 8
// lets up to 8 batch frames stream per connection before their replies come
// back — see the README's pipelined-ingest section for tuning):
//
//	ddsnode -role cluster-coordinator -shards 4 -listen 127.0.0.1:7070 -sample 20
//	ddsnode -role site -id 0 -coordinator 127.0.0.1:7070,127.0.0.1:7071,127.0.0.1:7072,127.0.0.1:7073 \
//	        -codec binary -batch 64 -pipeline 8 -stream enron.tsv
//	ddsnode -role query -sample 20 -coordinator 127.0.0.1:7070,127.0.0.1:7071,127.0.0.1:7072,127.0.0.1:7073
//
// With -replicas R > 0 every shard becomes a replica group of 1 + R members
// on consecutive ports (shard c member m binds port + c*(R+1) + m); the
// primary pushes its full bottom-s sample to the replicas every
// -sync-interval. Sites and query clients then list the group members of a
// shard separated by "/" (shards stay comma-separated) and fail over
// automatically when a primary dies:
//
//	ddsnode -role cluster-coordinator -shards 2 -replicas 1 -listen 127.0.0.1:7070 -sample 20
//	ddsnode -role site -id 0 -codec binary -batch 64 -pipeline 8 -stream enron.tsv \
//	        -coordinator 127.0.0.1:7070/127.0.0.1:7071,127.0.0.1:7072/127.0.0.1:7073
//	ddsnode -role query -sample 20 -coordinator 127.0.0.1:7070/127.0.0.1:7071,127.0.0.1:7072/127.0.0.1:7073
//
// -role replica runs one standalone warm replica: an infinite-window
// coordinator that accepts state-sync pushes and promote frames (any
// coordinator does; the dedicated role exists so a replica can be placed on
// its own host and adopted as a group member address).
//
// All nodes of one deployment must share -hash-seed (and -window, if set),
// and a query's -sample must not exceed the coordinators' -sample: each
// shard only retains its bottom-s, so merges are exact only up to size s.
// (-window is the sliding-window length in slots, a protocol parameter;
// -pipeline is the transport's batch-frames-in-flight credit window.
// Replication requires the infinite-window protocol: the sliding-window
// coordinator's candidate store does not fit in a sample frame yet.)
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/hashing"
	"repro/internal/netsim"
	"repro/internal/replica"
	"repro/internal/sliding"
	"repro/internal/stream"
	"repro/internal/wire"
)

func main() {
	var (
		role         = flag.String("role", "coordinator", "coordinator, cluster-coordinator, replica, site, or query")
		listen       = flag.String("listen", "127.0.0.1:7070", "coordinator listen address (cluster shard c member m binds port + c*(replicas+1) + m)")
		coordinator  = flag.String("coordinator", "127.0.0.1:7070", "coordinator shard addresses: shards comma-separated, replica-group members '/'-separated (site/query roles)")
		shards       = flag.Int("shards", 1, "number of coordinator shards (cluster-coordinator role)")
		replicas     = flag.Int("replicas", 0, "warm replicas per shard; > 0 turns each shard into a replica group (cluster-coordinator role)")
		syncInterval = flag.Duration("sync-interval", replica.DefaultSyncInterval, "how often each primary pushes its sample to its replicas (cluster-coordinator role with -replicas)")
		id           = flag.Int("id", 0, "site id (site role)")
		sample       = flag.Int("sample", 20, "sample size s per shard (infinite-window); also the merged query size, which must not exceed the coordinators' s")
		window       = flag.Int64("window", 0, "window size in slots; > 0 switches to the sliding-window protocol")
		streamPath   = flag.String("stream", "", "stream file to replay (site role); '-' reads stdin")
		hashSeed     = flag.Uint64("hash-seed", 20130501, "shared hash-function seed (must match on all nodes)")
		codecName    = flag.String("codec", "json", "wire codec: json or binary (site/query roles)")
		batch        = flag.Int("batch", 1, "offers per batch frame; > 1 enables batched transport (site role)")
		pipeline     = flag.Int("pipeline", 0, "pipelined ingest: max batch frames in flight per connection; 0 or 1 = synchronous request/response (site role; try 8)")
	)
	flag.Parse()

	codec, err := wire.ParseCodec(*codecName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	switch *role {
	case "coordinator":
		runCoordinator(*listen, 1, 0, *syncInterval, *sample, *window, codec)
	case "cluster-coordinator":
		runCoordinator(*listen, *shards, *replicas, *syncInterval, *sample, *window, codec)
	case "replica":
		runReplica(*listen, *sample, *window)
	case "site":
		runSite(splitGroups(*coordinator), *id, *window, *streamPath, *hashSeed, wire.Options{Codec: codec, BatchSize: *batch, Window: *pipeline})
	case "query":
		runQuery(splitGroups(*coordinator), *sample, *window, codec)
	default:
		fmt.Fprintf(os.Stderr, "unknown role %q\n", *role)
		os.Exit(2)
	}
}

// splitGroups parses the -coordinator list: shards separated by commas, the
// members of one shard's replica group separated by slashes.
func splitGroups(list string) [][]string {
	var groups [][]string
	for _, shard := range strings.Split(list, ",") {
		var members []string
		for _, a := range strings.Split(shard, "/") {
			if a = strings.TrimSpace(a); a != "" {
				members = append(members, a)
			}
		}
		if len(members) > 0 {
			groups = append(groups, members)
		}
	}
	return groups
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}

func runCoordinator(listen string, shards, replicas int, syncInterval time.Duration, sampleSize int, window int64, codec wire.Codec) {
	if window > 0 && replicas > 0 {
		fatal(fmt.Errorf("replication requires the infinite-window protocol (drop -window or -replicas)"))
	}
	if replicas > 0 {
		runReplicatedCoordinator(listen, shards, replicas, syncInterval, sampleSize, codec)
		return
	}
	newCoord := func(int) netsim.CoordinatorNode { return core.NewInfiniteCoordinator(sampleSize) }
	kind := fmt.Sprintf("infinite-window (s=%d per shard)", sampleSize)
	if window > 0 {
		newCoord = func(int) netsim.CoordinatorNode { return sliding.NewCoordinator() }
		kind = fmt.Sprintf("sliding-window (w=%d slots)", window)
	}
	srv, err := cluster.Listen(listen, shards, newCoord)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("%d-shard %s coordinator\n", srv.Shards(), kind)
	for shard, addr := range srv.Addrs() {
		fmt.Printf("  shard %d listening on %s\n", shard, addr)
	}
	fmt.Println("press Ctrl-C to stop")

	waitForSignal()
	offers, replies, queries := srv.Stats()
	fmt.Printf("\nshutting down: %d offers, %d replies, %d queries served", offers, replies, queries)
	if shards > 1 {
		fmt.Printf(" (per-shard offers: %v)", srv.ShardStats())
	}
	fmt.Println()
	mergeSize := sampleSize
	if window > 0 {
		mergeSize = 1 // the window sample is the single minimum across shards
	}
	fmt.Println("final merged sample:")
	for _, e := range srv.MergedSample(mergeSize) {
		fmt.Printf("  %-40s h=%.6f\n", e.Key, e.Hash)
	}
	_ = srv.Close()
}

func runReplicatedCoordinator(listen string, shards, replicas int, syncInterval time.Duration, sampleSize int, codec wire.Codec) {
	srv, err := replica.Listen(listen, shards, replica.Options{
		Replicas:     replicas,
		SyncInterval: syncInterval,
		Codec:        codec,
	}, func(int, int) netsim.CoordinatorNode {
		return core.NewInfiniteCoordinator(sampleSize)
	})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("%d-shard infinite-window coordinator (s=%d per shard), %d warm replica(s) per shard, sync every %v\n",
		srv.Shards(), sampleSize, replicas, syncInterval)
	groups := srv.GroupAddrs()
	shardArgs := make([]string, len(groups))
	for shard, members := range groups {
		fmt.Printf("  shard %d: primary %s, replicas %s\n", shard, members[0], strings.Join(members[1:], " "))
		shardArgs[shard] = strings.Join(members, "/")
	}
	fmt.Printf("site/query -coordinator value: %s\n", strings.Join(shardArgs, ","))
	fmt.Println("press Ctrl-C to stop")

	waitForSignal()
	offers, replies, queries := srv.Stats()
	fmt.Printf("\nshutting down: %d offers, %d replies, %d queries served\n", offers, replies, queries)
	for shard := range groups {
		fmt.Printf("  shard %d primary: member %d (epochs %v)\n", shard, srv.PrimaryIndex(shard), srv.Epochs(shard))
	}
	if samples, err := srv.PrimarySamples(); err == nil {
		fmt.Println("final merged sample:")
		for _, e := range cluster.Merge(sampleSize, samples...) {
			fmt.Printf("  %-40s h=%.6f\n", e.Key, e.Hash)
		}
	}
	_ = srv.Close()
}

// runReplica runs one standalone warm replica: a restorable infinite-window
// coordinator that waits for a primary's state-sync pushes and serves ingest
// once promoted.
func runReplica(listen string, sampleSize int, window int64) {
	if window > 0 {
		fatal(fmt.Errorf("replication requires the infinite-window protocol (drop -window)"))
	}
	srv := wire.NewCoordinatorServer(core.NewInfiniteCoordinator(sampleSize))
	addr, err := srv.Listen(listen)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("warm replica (s=%d) listening on %s: accepting state-sync, promote, and (once promoted) ingest\n", sampleSize, addr)
	fmt.Println("press Ctrl-C to stop")
	waitForSignal()
	offers, replies, queries := srv.Stats()
	fmt.Printf("\nshutting down: epoch %d (promoted: %v), %d offers, %d replies, %d queries served\n",
		srv.Epoch(), srv.Promoted(), offers, replies, queries)
	fmt.Println("final sample:")
	for _, e := range srv.Sample() {
		fmt.Printf("  %-40s h=%.6f\n", e.Key, e.Hash)
	}
	_ = srv.Close()
}

func waitForSignal() {
	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	<-stop
}

func runSite(groups [][]string, id int, window int64, streamPath string, hashSeed uint64, opts wire.Options) {
	if streamPath == "" {
		fmt.Fprintln(os.Stderr, "site role requires -stream")
		os.Exit(2)
	}
	if len(groups) == 0 {
		fmt.Fprintln(os.Stderr, "site role requires at least one -coordinator address")
		os.Exit(2)
	}
	replicated := false
	for _, members := range groups {
		if len(members) > 1 {
			replicated = true
		}
	}
	if replicated && window > 0 {
		fatal(fmt.Errorf("replication requires the infinite-window protocol (drop -window or the replica addresses)"))
	}
	in := os.Stdin
	if streamPath != "-" {
		f, err := os.Open(streamPath)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		in = f
	}
	elements, err := stream.Read(in)
	if err != nil {
		fatal(err)
	}

	hasher := hashing.NewMurmur2(hashSeed)
	router := cluster.NewShardRouter(len(groups), hasher)
	newSite := func(int) netsim.SiteNode { return core.NewInfiniteSite(id, hasher) }
	if window > 0 {
		newSite = func(shard int) netsim.SiteNode {
			return sliding.NewSite(id, hasher, window, uint64(id*len(groups)+shard)+1)
		}
	}
	client, err := cluster.DialGroups(groups, router, newSite, opts)
	if err != nil {
		fatal(err)
	}
	defer client.Close()

	lastSlot := int64(-1)
	for _, e := range elements {
		if window > 0 && lastSlot >= 0 && e.Slot > lastSlot {
			// Close out every slot between arrivals so expiries fire.
			for slot := lastSlot; slot < e.Slot; slot++ {
				if err := client.EndSlot(slot); err != nil {
					fatal(err)
				}
			}
		}
		if err := client.Observe(e.Key, e.Slot); err != nil {
			fatal(err)
		}
		lastSlot = e.Slot
	}
	if window > 0 && lastSlot >= 0 {
		if err := client.EndSlot(lastSlot); err != nil {
			fatal(err)
		}
	}
	if err := client.Flush(); err != nil {
		fatal(err)
	}
	mode := "sync"
	if opts.Window > 1 {
		mode = fmt.Sprintf("pipelined window %d", opts.Window)
	}
	fmt.Printf("site %d replayed %d elements to %d shard(s) [%s, batch %d, %s]: %d offers sent, %d replies received",
		id, len(elements), len(groups), opts.Codec, opts.BatchSize, mode, client.MessagesSent(), client.MessagesReceived())
	if n, stall := client.Failovers(); n > 0 {
		fmt.Printf("; survived %d failover(s), %.0f ms stalled", n, float64(stall)/float64(time.Millisecond))
	}
	fmt.Println()
}

func runQuery(groups [][]string, sampleSize int, window int64, codec wire.Codec) {
	if len(groups) == 0 {
		fmt.Fprintln(os.Stderr, "query role requires at least one -coordinator address")
		os.Exit(2)
	}
	// Sliding-window shards each hold at most one live entry; the global
	// window sample is the single minimum across them, and the KMV
	// distinct-count estimator does not apply.
	if window > 0 {
		sampleSize = 1
	}
	entries, err := cluster.QueryGroups(groups, sampleSize, codec)
	if err != nil {
		fatal(err)
	}
	scope := "distinct sample"
	if window > 0 {
		scope = "window sample"
	}
	if len(groups) > 1 {
		scope = fmt.Sprintf("merged %s across %d shards", scope, len(groups))
	}
	fmt.Printf("%s (%d entries):\n", scope, len(entries))
	for _, e := range entries {
		fmt.Printf("  %-40s h=%.6f\n", e.Key, e.Hash)
	}
	if window > 0 || len(entries) == 0 {
		return
	}
	est, err := cluster.DistinctCount(sampleSize, entries)
	switch {
	case err != nil:
		fmt.Printf("distinct-count estimate unavailable: %v\n", err)
	case len(entries) < sampleSize:
		// The sample holds the whole distinct population: exact answer.
		fmt.Printf("exact distinct elements: %.0f (population smaller than s=%d)\n", est.Estimate, sampleSize)
	default:
		fmt.Printf("estimated distinct elements: %.0f  (95%% CI %.0f – %.0f)\n",
			est.Estimate, est.Low, est.High)
	}
}
