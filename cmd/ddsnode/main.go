// Command ddsnode runs one node of a real (non-simulated) deployment of the
// distinct sampler over TCP, built on the public dds package: a coordinator
// cluster (sharded, optionally replicated, infinite- or sliding-window), a
// standalone warm replica, a site replaying a stream file, a one-shot query
// client, or a reshard admin client. Stream files use the "slot<TAB>key"
// format produced by cmd/ddsgen.
//
// A complete single-coordinator deployment in three terminals:
//
//	ddsnode -role coordinator -listen 127.0.0.1:7070 -sample 20
//	ddsgen  -dataset enron -scale 0.01 -out enron.tsv
//	ddsnode -role site -id 0 -coordinator 127.0.0.1:7070 -stream enron.tsv
//	ddsnode -role query -coordinator 127.0.0.1:7070
//
// A 4-shard cluster with pipelined batched binary ingest (shard c listens on
// port 7070+c; -pipeline 8 lets up to 8 batch frames stream per connection):
//
//	ddsnode -role cluster-coordinator -shards 4 -listen 127.0.0.1:7070 -sample 20
//	ddsnode -role site -id 0 -coordinator 127.0.0.1:7070,127.0.0.1:7071,127.0.0.1:7072,127.0.0.1:7073 \
//	        -codec binary -batch 64 -pipeline 8 -stream enron.tsv
//	ddsnode -role query -sample 20 -coordinator 127.0.0.1:7070,...
//
// With -replicas R > 0 every shard becomes a replica group of 1 + R members
// on consecutive ports (shard c member m binds port + c*(R+1) + m); sites
// and query clients list a shard's members separated by "/" (shards stay
// comma-separated) and fail over automatically when a primary dies. Since
// the unified Snapshot/Restore API, replication works for BOTH windows: a
// sliding-window cluster (-window W) replicates its candidate stores and
// slot clocks through the same generic state frames.
//
//	ddsnode -role cluster-coordinator -shards 2 -replicas 1 -window 100 -listen 127.0.0.1:7070
//
// With -admin ADDR the cluster also serves resharding commands; -role
// reshard triggers an online split or merge, and sites/queries started with
// -admin fetch the live (post-reshard) table and groups instead of assuming
// the uniform partition:
//
//	ddsnode -role cluster-coordinator -shards 2 -replicas 1 -admin 127.0.0.1:7069 -listen 127.0.0.1:7070
//	ddsnode -role reshard -admin 127.0.0.1:7069 -split 0        # split slot 0 at its range midpoint
//	ddsnode -role reshard -admin 127.0.0.1:7069 -split 0:0.25   # split at a quarter of the range
//	ddsnode -role reshard -admin 127.0.0.1:7069 -merge-range 0  # merge range 0 with its right neighbour
//	ddsnode -role site -id 0 -admin 127.0.0.1:7069 -stream enron.tsv
//
// With -data-dir DIR the coordinator spools atomic per-shard snapshots under
// DIR and restores from them at the next boot — a SIGKILL'd cluster restarted
// with the same -data-dir comes back warm with its last spooled sample and
// route table, and replaying sites repair whatever the final snapshot missed
// (offers are idempotent):
//
//	ddsnode -role cluster-coordinator -shards 2 -data-dir /var/lib/dds \
//	        -snap-interval 500ms -snap-retain 5 -listen 127.0.0.1:7070
//
// All nodes of one deployment must share -hash-seed, -sample, and -window.
// (-window is the sliding-window length in slots, a protocol parameter;
// -pipeline is the transport's batch-frames-in-flight credit window.)
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/dds"
	"repro/internal/core"
	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/sliding"
	"repro/internal/stream"
	"repro/internal/wire"
)

// nodeFlags carries every parsed flag, so validation is a pure function the
// tests can table-drive.
type nodeFlags struct {
	Role         string
	Listen       string
	Coordinator  string
	Shards       int
	Replicas     int
	SyncInterval time.Duration
	Lease        time.Duration
	RetryMax     int
	RetryBase    time.Duration
	ID           int
	Sample       int
	Window       int64
	Stream       string
	HashSeed     uint64
	Codec        string
	Batch        int
	Pipeline     int
	Admin        string
	Split        string
	MergeRange   int
	Metrics      string
	Scrape       string
	Require      string
	TraceSample  float64

	AutoReshard   bool
	WatchHigh     float64
	WatchLow      float64
	WatchCooldown time.Duration
	WatchInterval time.Duration

	DataDir      string
	SnapInterval time.Duration
	SnapRetain   int
}

// validateFlags rejects contradictory or nonsensical flag combinations with
// actionable errors, before any socket is touched. Silent misbehavior —
// -pipeline 1 quietly not pipelining, -role reshard quietly printing
// nothing — is exactly what it exists to prevent.
func validateFlags(f nodeFlags) error {
	switch f.Role {
	case "coordinator", "cluster-coordinator", "replica", "site", "query", "reshard", "scrape":
	default:
		return fmt.Errorf("unknown role %q (want coordinator, cluster-coordinator, replica, site, query, reshard, or scrape)", f.Role)
	}
	if f.Codec != "json" && f.Codec != "binary" {
		return fmt.Errorf("unknown codec %q (want json or binary)", f.Codec)
	}
	if f.Sample < 1 {
		return fmt.Errorf("-sample %d: the sample size must be at least 1", f.Sample)
	}
	if f.Window < 0 {
		return fmt.Errorf("-window %d: the window length cannot be negative (0 = infinite window)", f.Window)
	}
	if f.Shards < 1 {
		return fmt.Errorf("-shards %d: a cluster needs at least one shard", f.Shards)
	}
	if f.Replicas < 0 {
		return fmt.Errorf("-replicas %d: the replica count cannot be negative (0 disables replication)", f.Replicas)
	}
	if f.SyncInterval <= 0 {
		return fmt.Errorf("-sync-interval %v: the replication interval must be positive", f.SyncInterval)
	}
	if f.Lease < 0 {
		return fmt.Errorf("-lease-interval %v: the lease cannot be negative (0 disables lease fencing)", f.Lease)
	}
	if f.Lease > 0 && f.Lease <= f.SyncInterval {
		return fmt.Errorf("-lease-interval %v must exceed -sync-interval %v: a healthy primary renews its lease once per replication round", f.Lease, f.SyncInterval)
	}
	if f.Lease > 0 && f.Replicas < 1 {
		return fmt.Errorf("-lease-interval needs -replicas: the lease is renewed by replica quorum acks, so an unreplicated shard could never renew")
	}
	if f.RetryBase < 0 {
		return fmt.Errorf("-retry-base %v: the retry backoff base cannot be negative", f.RetryBase)
	}
	if f.Batch < 1 {
		return fmt.Errorf("-batch %d: the batch size must be at least 1 (1 = one offer per frame)", f.Batch)
	}
	if f.Pipeline < 0 || f.Pipeline == 1 {
		return fmt.Errorf("-pipeline %d is not a pipeline: use 0 to disable pipelining or at least 2 frames in flight", f.Pipeline)
	}
	if f.Role == "reshard" {
		if f.Admin == "" {
			return fmt.Errorf("-role reshard requires -admin (the coordinator's admin address) — without it there is no cluster to reshard")
		}
		if f.Split != "" && f.MergeRange >= 0 {
			return fmt.Errorf("-split and -merge-range are mutually exclusive: a reshard command is one split or one merge")
		}
		if f.Split != "" {
			if _, _, err := parseSplit(f.Split); err != nil {
				return err
			}
		}
	}
	if f.Metrics != "" {
		if _, _, err := net.SplitHostPort(f.Metrics); err != nil {
			return fmt.Errorf("-metrics %q is not a host:port address: %v", f.Metrics, err)
		}
		if f.Metrics == f.Listen {
			return fmt.Errorf("-metrics %s collides with -listen: the metrics endpoint needs its own address", f.Metrics)
		}
		if f.Admin != "" && f.Metrics == f.Admin {
			return fmt.Errorf("-metrics %s collides with -admin: the metrics endpoint needs its own address", f.Metrics)
		}
	}
	if f.AutoReshard {
		if f.Role != "coordinator" && f.Role != "cluster-coordinator" {
			return fmt.Errorf("-autoreshard only applies to coordinator roles: the watcher runs inside the serving cluster")
		}
		if f.Admin == "" {
			return fmt.Errorf("-autoreshard requires -admin: without the admin listener nothing external can observe or audit the watcher's plans")
		}
		if f.Metrics == "" {
			return fmt.Errorf("-autoreshard requires -metrics: an autopilot that reshards silently is undebuggable — its dds_watcher_* counters must be scrapable")
		}
	}
	if f.WatchHigh <= 0 || f.WatchHigh >= 1 || f.WatchLow <= 0 || f.WatchLow >= f.WatchHigh {
		return fmt.Errorf("-watch-high %v / -watch-low %v: watermarks must satisfy 0 < low < high < 1", f.WatchHigh, f.WatchLow)
	}
	if f.WatchCooldown <= 0 {
		return fmt.Errorf("-watch-cooldown %v: the post-plan cooldown must be positive (it is the anti-flapping guard)", f.WatchCooldown)
	}
	if f.WatchInterval <= 0 {
		return fmt.Errorf("-watch-interval %v: the scoring interval must be positive", f.WatchInterval)
	}
	if f.DataDir != "" && f.Role != "coordinator" && f.Role != "cluster-coordinator" {
		return fmt.Errorf("-data-dir only applies to coordinator roles: the snapshot spool lives beside the shards it persists")
	}
	if f.DataDir == "" && (f.SnapInterval != 0 || f.SnapRetain != 0) {
		return fmt.Errorf("-snap-interval/-snap-retain tune the snapshot spool and need -data-dir to arm it")
	}
	if f.SnapInterval < 0 {
		return fmt.Errorf("-snap-interval %v: the snapshot interval cannot be negative (0 = default)", f.SnapInterval)
	}
	if f.SnapRetain < 0 {
		return fmt.Errorf("-snap-retain %d: the per-shard snapshot retention cannot be negative (0 = default)", f.SnapRetain)
	}
	if f.TraceSample < 0 || f.TraceSample > 1 {
		return fmt.Errorf("-trace-sample %v: the trace sample rate is a probability in [0, 1]", f.TraceSample)
	}
	if f.Role == "scrape" && f.TraceSample > 0 {
		return fmt.Errorf("-trace-sample is meaningless for -role scrape: the scrape client records no spans; set it on the node being scraped")
	}
	if f.Role == "scrape" && f.Scrape == "" {
		return fmt.Errorf("-role scrape requires -scrape (the metrics endpoint to check, ADDR or URL)")
	}
	if f.Role == "site" && f.Stream == "" {
		return fmt.Errorf("-role site requires -stream (a slot<TAB>key file, or '-' for stdin)")
	}
	if (f.Role == "site" || f.Role == "query") && f.Coordinator == "" && f.Admin == "" {
		return fmt.Errorf("-role %s requires -coordinator addresses or -admin to discover them", f.Role)
	}
	return nil
}

// parseSplit parses -split's SLOT[:FRAC] syntax.
func parseSplit(spec string) (slot int, frac float64, err error) {
	slotSpec := spec
	if s, fracStr, ok := strings.Cut(spec, ":"); ok {
		slotSpec = s
		frac, err = strconv.ParseFloat(fracStr, 64)
		if err != nil {
			return 0, 0, fmt.Errorf("bad -split fraction %q: %w", fracStr, err)
		}
		if frac <= 0 || frac >= 1 {
			return 0, 0, fmt.Errorf("bad -split fraction %v: must be strictly between 0 and 1", frac)
		}
	}
	slot, err = strconv.Atoi(slotSpec)
	if err != nil {
		return 0, 0, fmt.Errorf("bad -split slot %q: %w", slotSpec, err)
	}
	if slot < 0 {
		return 0, 0, fmt.Errorf("bad -split slot %d: slot indices are non-negative", slot)
	}
	return slot, frac, nil
}

// splitGroups parses the -coordinator list: shards separated by commas, the
// members of one shard's replica group separated by slashes.
func splitGroups(list string) [][]string {
	var groups [][]string
	for _, shard := range strings.Split(list, ",") {
		var members []string
		for _, a := range strings.Split(shard, "/") {
			if a = strings.TrimSpace(a); a != "" {
				members = append(members, a)
			}
		}
		if len(members) > 0 {
			groups = append(groups, members)
		}
	}
	return groups
}

func main() {
	var f nodeFlags
	flag.StringVar(&f.Role, "role", "coordinator", "coordinator, cluster-coordinator, replica, site, query, or reshard")
	flag.StringVar(&f.Listen, "listen", "127.0.0.1:7070", "coordinator listen address (cluster shard c member m binds port + c*(replicas+1) + m)")
	flag.StringVar(&f.Coordinator, "coordinator", "127.0.0.1:7070", "coordinator shard addresses: shards comma-separated, replica-group members '/'-separated (site/query roles)")
	flag.IntVar(&f.Shards, "shards", 1, "number of coordinator shards (cluster-coordinator role)")
	flag.IntVar(&f.Replicas, "replicas", 0, "warm replicas per shard; > 0 turns each shard into a replica group (cluster-coordinator role)")
	flag.DurationVar(&f.SyncInterval, "sync-interval", 100*time.Millisecond, "how often each primary pushes its state to its replicas (cluster-coordinator role with -replicas)")
	flag.DurationVar(&f.Lease, "lease-interval", 0, "lease-fence primaries: a primary whose replica quorum has not renewed it within this long stops ingesting; must exceed -sync-interval, 0 disables (cluster-coordinator role with -replicas)")
	flag.IntVar(&f.RetryMax, "retry-max", 0, "max retries per operation against a lease-fenced primary before promoting a replica; 0 = default (5), negative = promote on the first fence (site role)")
	flag.DurationVar(&f.RetryBase, "retry-base", 0, "exponential-backoff base for lease-fence retries; 0 = default (5ms) (site role)")
	flag.IntVar(&f.ID, "id", 0, "site id (site role)")
	flag.IntVar(&f.Sample, "sample", 20, "sample size s per shard and for merged queries (must match across all nodes)")
	flag.Int64Var(&f.Window, "window", 0, "window size in slots; > 0 switches to the sliding-window protocol")
	flag.StringVar(&f.Stream, "stream", "", "stream file to replay (site role); '-' reads stdin")
	flag.Uint64Var(&f.HashSeed, "hash-seed", dds.DefaultSeed, "shared hash-function seed (must match on all nodes)")
	flag.StringVar(&f.Codec, "codec", "binary", "wire codec: json or binary")
	flag.IntVar(&f.Batch, "batch", 1, "offers per batch frame; > 1 enables batched transport (site role)")
	flag.IntVar(&f.Pipeline, "pipeline", 0, "pipelined ingest: max batch frames in flight per connection; 0 = synchronous (site role; try 8)")
	flag.StringVar(&f.Admin, "admin", "", "resharding admin address: the cluster-coordinator role listens on it, site/query/reshard roles connect to it")
	flag.StringVar(&f.Split, "split", "", "reshard role: split shard slot SLOT (or SLOT:FRAC for a cut at that fraction of its range)")
	flag.IntVar(&f.MergeRange, "merge-range", -1, "reshard role: merge this range index with the range to its right")
	flag.StringVar(&f.Metrics, "metrics", "", "serve live introspection on this host:port — /metrics, /debug/vars, /debug/events, /debug/pprof (coordinator and replica roles)")
	flag.StringVar(&f.Scrape, "scrape", "", "scrape role: metrics endpoint to fetch and check (host:port or full URL)")
	flag.StringVar(&f.Require, "require", "", "scrape role: comma-separated metric families that must be present with a nonzero total")
	flag.Float64Var(&f.TraceSample, "trace-sample", 0, "fraction of ingest batches to trace with full cross-plane span timelines (/debug/traces); 0 disables, 1 traces everything")
	flag.BoolVar(&f.AutoReshard, "autoreshard", false, "run the autopilot watcher: score per-shard load and split/merge automatically; requires -admin and -metrics (coordinator roles)")
	flag.Float64Var(&f.WatchHigh, "watch-high", 0.65, "autoreshard: smoothed load share above which the hottest shard splits")
	flag.Float64Var(&f.WatchLow, "watch-low", 0.15, "autoreshard: smoothed combined share below which the coldest adjacent ranges merge")
	flag.DurationVar(&f.WatchCooldown, "watch-cooldown", 2*time.Second, "autoreshard: stand-down after any plan before the watcher acts again")
	flag.DurationVar(&f.WatchInterval, "watch-interval", 250*time.Millisecond, "autoreshard: how often the watcher scores shard load deltas")
	flag.StringVar(&f.DataDir, "data-dir", "", "durability: spool atomic per-shard snapshots under this directory and restore from it at boot (coordinator roles)")
	flag.DurationVar(&f.SnapInterval, "snap-interval", 0, "durability: background snapshot cadence per shard primary; 0 = default (1s); requires -data-dir")
	flag.IntVar(&f.SnapRetain, "snap-retain", 0, "durability: snapshots kept per shard before pruning; 0 = default (3); requires -data-dir")
	flag.Parse()

	if err := validateFlags(f); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	// Process-wide: covers every role, the wire-level replica role included
	// (the dds roles also set it through WithTraceSampling).
	obs.SetTraceSampleRate(f.TraceSample)

	switch f.Role {
	case "coordinator":
		f.Shards = 1
		runCoordinator(f)
	case "cluster-coordinator":
		runCoordinator(f)
	case "replica":
		runReplica(f)
	case "site":
		runSite(f)
	case "query":
		runQuery(f)
	case "reshard":
		runReshard(f)
	case "scrape":
		runScrape(f)
	}
}

// serveMetrics starts the live-introspection endpoint when -metrics is set,
// returning its bound address ("" when disabled).
func serveMetrics(f nodeFlags) string {
	if f.Metrics == "" {
		return ""
	}
	ln, err := net.Listen("tcp", f.Metrics)
	if err != nil {
		fatal(fmt.Errorf("metrics listen: %w", err))
	}
	go func() { _ = http.Serve(ln, dds.MetricsHandler()) }()
	addr := ln.Addr().String()
	fmt.Printf("metrics listening on http://%s/metrics (also /debug/vars, /debug/events, /debug/traces, /debug/pprof)\n", addr)
	return addr
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}

// options renders the shared flags as dds functional options.
func (f nodeFlags) options() []dds.Option {
	opts := []dds.Option{dds.WithCodec(dds.Codec(f.Codec))}
	if f.Window > 0 {
		opts = append(opts, dds.WithWindow(f.Window))
	}
	if f.Batch > 1 {
		opts = append(opts, dds.WithBatch(f.Batch))
	}
	if f.Pipeline > 1 {
		opts = append(opts, dds.WithPipelining(f.Pipeline))
	}
	if f.RetryMax != 0 || f.RetryBase != 0 {
		opts = append(opts, dds.WithRetry(f.RetryMax, f.RetryBase))
	}
	if f.TraceSample > 0 {
		opts = append(opts, dds.WithTraceSampling(f.TraceSample))
	}
	return opts
}

func (f nodeFlags) config() dds.Config {
	return dds.Config{
		Coordinators: splitGroups(f.Coordinator),
		SiteID:       f.ID,
		SampleSize:   f.Sample,
		Seed:         f.HashSeed,
		Listen:       f.Listen,
		Shards:       f.Shards,
	}
}

func waitForSignal() {
	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	<-stop
}

func runCoordinator(f nodeFlags) {
	opts := f.options()
	opts = append(opts, dds.WithReplicas(f.Replicas), dds.WithSyncInterval(f.SyncInterval))
	if f.Lease > 0 {
		opts = append(opts, dds.WithLease(f.Lease))
	}
	if f.Admin != "" {
		opts = append(opts, dds.WithAdmin(f.Admin))
	}
	if f.AutoReshard {
		opts = append(opts,
			dds.WithAutoReshard(f.WatchHigh, f.WatchLow, f.WatchCooldown),
			dds.WithWatchInterval(f.WatchInterval))
	}
	if f.DataDir != "" {
		opts = append(opts, dds.WithDataDir(f.DataDir))
		if f.SnapInterval > 0 {
			opts = append(opts, dds.WithSnapInterval(f.SnapInterval))
		}
		if f.SnapRetain > 0 {
			opts = append(opts, dds.WithSnapRetain(f.SnapRetain))
		}
	}
	cl, err := dds.Serve(context.Background(), f.config(), opts...)
	if err != nil {
		fatal(err)
	}
	serveMetrics(f)
	kind := fmt.Sprintf("infinite-window (s=%d per shard)", f.Sample)
	if f.Window > 0 {
		kind = fmt.Sprintf("sliding-window (w=%d slots)", f.Window)
	}
	fmt.Printf("%d-shard %s coordinator, %d warm replica(s) per shard\n", f.Shards, kind, f.Replicas)
	for shard, members := range cl.Groups() {
		fmt.Printf("  shard %d: %s\n", shard, strings.Join(members, " "))
	}
	fmt.Printf("site/query -coordinator value: %s\n", cl.CoordinatorSpec())
	if addr := cl.AdminAddr(); addr != "" {
		fmt.Printf("reshard admin listening on %s (ddsnode -role reshard -admin %s ...)\n", addr, addr)
	}
	if f.AutoReshard {
		fmt.Printf("autopilot resharding armed: split above %.2f, merge below %.2f, cooldown %v, scoring every %v\n",
			f.WatchHigh, f.WatchLow, f.WatchCooldown, f.WatchInterval)
	}
	if f.DataDir != "" {
		fmt.Printf("durability armed: snapshot spool at %s (restored shards come back warm after a crash or restart)\n", f.DataDir)
	}
	fmt.Println("press Ctrl-C to stop")

	waitForSignal()
	offers, replies, queries := cl.Stats()
	fmt.Printf("\nshutting down: %d offers, %d replies, %d queries served\n", offers, replies, queries)
	if ws := cl.WatcherStats(); ws != nil {
		fmt.Printf("autopilot: %d scoring ticks, %d splits, %d merges, %d declined\n",
			ws.Ticks, ws.Splits, ws.Merges, ws.Skipped)
	}
	if sample, err := cl.Sample(0); err == nil {
		fmt.Println("final merged sample:")
		for _, e := range sample {
			fmt.Printf("  %-40s h=%.6f\n", e.Key, e.Hash)
		}
	}
	_ = cl.Close()
}

// runReplica runs one standalone warm replica: a coordinator of the chosen
// window kind that accepts state-frame pushes and promote frames, serving
// ingest once promoted. Placed on its own host, its address joins a replica
// group's member list. (This role sits below the dds API on purpose: a bare
// replica is a single wire-level coordinator server, not a cluster.)
// newReplicaNode builds the protocol coordinator a standalone replica hosts.
func newReplicaNode(f nodeFlags) netsim.CoordinatorNode {
	if f.Window > 0 {
		return sliding.NewCoordinator()
	}
	return core.NewInfiniteCoordinator(f.Sample)
}

func runReplica(f nodeFlags) {
	srv := wire.NewCoordinatorServer(newReplicaNode(f))
	addr, err := srv.Listen(f.Listen)
	if err != nil {
		fatal(err)
	}
	serveMetrics(f)
	kind := fmt.Sprintf("infinite-window, s=%d", f.Sample)
	if f.Window > 0 {
		kind = fmt.Sprintf("sliding-window, w=%d slots", f.Window)
	}
	fmt.Printf("warm replica (%s) listening on %s: accepting state frames, promote, and (once promoted) ingest\n", kind, addr)
	fmt.Println("press Ctrl-C to stop")
	waitForSignal()
	offers, replies, queries := srv.Stats()
	fmt.Printf("\nshutting down: epoch %d (promoted: %v), %d offers, %d replies, %d queries served\n",
		srv.Epoch(), srv.Promoted(), offers, replies, queries)
	fmt.Println("final sample:")
	for _, e := range srv.Sample() {
		fmt.Printf("  %-40s h=%.6f\n", e.Key, e.Hash)
	}
	_ = srv.Close()
}

func runSite(f nodeFlags) {
	in := os.Stdin
	if f.Stream != "-" {
		file, err := os.Open(f.Stream)
		if err != nil {
			fatal(err)
		}
		defer file.Close()
		in = file
	}
	elements, err := stream.Read(in)
	if err != nil {
		fatal(err)
	}

	opts := f.options()
	if f.Admin != "" {
		opts = append(opts, dds.WithAdmin(f.Admin))
	}
	client, err := dds.Open(context.Background(), f.config(), opts...)
	if err != nil {
		fatal(err)
	}
	defer client.Close()

	lastSlot := int64(-1)
	for _, e := range elements {
		if f.Window > 0 && lastSlot >= 0 && e.Slot > lastSlot {
			// Close out every slot between arrivals so expiries fire.
			for slot := lastSlot; slot < e.Slot; slot++ {
				if err := client.EndSlot(slot); err != nil {
					fatal(err)
				}
			}
		}
		if err := client.Offer(e.Key, e.Slot); err != nil {
			fatal(err)
		}
		lastSlot = e.Slot
	}
	if f.Window > 0 && lastSlot >= 0 {
		if err := client.EndSlot(lastSlot); err != nil {
			fatal(err)
		}
	}
	if err := client.Flush(); err != nil {
		fatal(err)
	}
	mode := "sync"
	if f.Pipeline > 1 {
		mode = fmt.Sprintf("pipelined window %d", f.Pipeline)
	}
	fmt.Printf("site %d replayed %d elements [%s, batch %d, %s]\n", f.ID, len(elements), f.Codec, f.Batch, mode)
}

func runQuery(f nodeFlags) {
	opts := f.options()
	if f.Admin != "" {
		opts = append(opts, dds.WithAdmin(f.Admin))
	}
	ctx := context.Background()
	sample, err := dds.Query(ctx, f.config(), opts...)
	if err != nil {
		fatal(err)
	}
	scope := "distinct sample"
	if f.Window > 0 {
		scope = "window sample"
	}
	fmt.Printf("%s (%d entries):\n", scope, len(sample))
	for _, e := range sample {
		fmt.Printf("  %-40s h=%.6f\n", e.Key, e.Hash)
	}
	if f.Window > 0 || len(sample) == 0 {
		return
	}
	// Whole-stream mode: the sample already fetched doubles as the KMV
	// sketch — the estimate is local, no second cluster round trip.
	est, err := sample.Estimate(f.Sample)
	switch {
	case err != nil:
		fmt.Printf("distinct-count estimate unavailable: %v\n", err)
	case est.Exact:
		fmt.Printf("exact distinct elements: %.0f (population smaller than s=%d)\n", est.Count, f.Sample)
	default:
		fmt.Printf("estimated distinct elements: %.0f  (95%% CI %.0f – %.0f)\n", est.Count, est.Low, est.High)
	}
}

func runReshard(f nodeFlags) {
	ctx := context.Background()
	var status *dds.AdminStatus
	var err error
	switch {
	case f.Split != "":
		slot, frac, perr := parseSplit(f.Split)
		if perr != nil {
			fatal(perr)
		}
		status, err = dds.AdminSplit(ctx, f.Admin, slot, frac)
	case f.MergeRange >= 0:
		status, err = dds.AdminMerge(ctx, f.Admin, f.MergeRange)
	default:
		status, err = dds.AdminTable(ctx, f.Admin)
	}
	if err != nil {
		fatal(err)
	}
	if rep := status.Report; rep != nil {
		fmt.Printf("%s v%d: moved range [%#x, %#x) from slot %d to slot %d (%d+%d entries, cutover %v, total %v)\n",
			rep.Op, rep.Version, rep.Lo, rep.Hi, rep.Donor, rep.Successor,
			rep.WarmEntries, rep.SettleEntries, rep.CutoverStall, rep.Total)
	}
	fmt.Printf("routing table v%d over %d range(s):\n", status.Version, len(status.Bounds))
	for i, b := range status.Bounds {
		fmt.Printf("  [%#016x, ...) -> slot %d\n", b, status.Slots[i])
	}
	fmt.Printf("site/query -coordinator value: %s\n", status.Coordinator)
	fmt.Println("note: restart running site processes with -admin so they fetch this table (the admin path does not flip remote sites)")
}

// runScrape fetches a node's /metrics endpoint, parses the Prometheus text
// exposition, and — with -require — fails unless every named metric family
// is present with a nonzero total. It is the deployment (and CI) smoke
// check: "is this cluster actually counting?" as an exit code.
func runScrape(f nodeFlags) {
	url := f.Scrape
	if !strings.Contains(url, "://") {
		url = "http://" + url + "/metrics"
	}
	resp, err := http.Get(url)
	if err != nil {
		fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		fatal(fmt.Errorf("scrape %s: status %s", url, resp.Status))
	}
	series, err := obs.ParsePrometheus(resp.Body)
	if err != nil {
		fatal(fmt.Errorf("scrape %s: not valid Prometheus text: %w", url, err))
	}
	fmt.Printf("scraped %s: %d series\n", url, len(series))
	failed := false
	for _, family := range strings.Split(f.Require, ",") {
		family = strings.TrimSpace(family)
		if family == "" {
			continue
		}
		total := obs.FamilyTotal(series, family)
		if total == 0 {
			fmt.Fprintf(os.Stderr, "FAIL %s: total is zero or family absent\n", family)
			failed = true
			continue
		}
		fmt.Printf("  ok %s total=%g\n", family, total)
	}
	if failed {
		os.Exit(1)
	}
}
