// Command ddsnode runs one node of a real (non-simulated) deployment of the
// distinct sampler over TCP: a coordinator (single, sharded cluster, or
// replicated cluster), a standalone replica, a site replaying a stream file,
// or a one-shot query client. Stream files use the "slot<TAB>key" format
// produced by cmd/ddsgen.
//
// A complete single-coordinator deployment in three terminals:
//
//	ddsnode -role coordinator -listen 127.0.0.1:7070 -sample 20
//	ddsgen  -dataset enron -scale 0.01 -out enron.tsv
//	ddsnode -role site -id 0 -coordinator 127.0.0.1:7070 -stream enron.tsv
//	ddsnode -role query -coordinator 127.0.0.1:7070
//
// A 4-shard cluster with pipelined batched binary ingest (shard c listens on
// port 7070+c; sites and query clients list all shard addresses; -pipeline 8
// lets up to 8 batch frames stream per connection before their replies come
// back — see the README's pipelined-ingest section for tuning):
//
//	ddsnode -role cluster-coordinator -shards 4 -listen 127.0.0.1:7070 -sample 20
//	ddsnode -role site -id 0 -coordinator 127.0.0.1:7070,127.0.0.1:7071,127.0.0.1:7072,127.0.0.1:7073 \
//	        -codec binary -batch 64 -pipeline 8 -stream enron.tsv
//	ddsnode -role query -sample 20 -coordinator 127.0.0.1:7070,127.0.0.1:7071,127.0.0.1:7072,127.0.0.1:7073
//
// With -replicas R > 0 every shard becomes a replica group of 1 + R members
// on consecutive ports (shard c member m binds port + c*(R+1) + m); the
// primary pushes its full bottom-s sample to the replicas every
// -sync-interval. Sites and query clients then list the group members of a
// shard separated by "/" (shards stay comma-separated) and fail over
// automatically when a primary dies:
//
//	ddsnode -role cluster-coordinator -shards 2 -replicas 1 -listen 127.0.0.1:7070 -sample 20
//	ddsnode -role site -id 0 -codec binary -batch 64 -pipeline 8 -stream enron.tsv \
//	        -coordinator 127.0.0.1:7070/127.0.0.1:7071,127.0.0.1:7072/127.0.0.1:7073
//	ddsnode -role query -sample 20 -coordinator 127.0.0.1:7070/127.0.0.1:7071,127.0.0.1:7072/127.0.0.1:7073
//
// -role replica runs one standalone warm replica: an infinite-window
// coordinator that accepts state-sync pushes and promote frames (any
// coordinator does; the dedicated role exists so a replica can be placed on
// its own host and adopted as a group member address).
//
// With -admin ADDR a (replicated) cluster coordinator also listens for
// resharding commands: -role reshard connects to it and triggers an online
// shard split or merge, executed live by the in-process reshard driver
// (snapshot handoff, two-phase cutover, donor prune):
//
//	ddsnode -role cluster-coordinator -shards 2 -replicas 1 -admin 127.0.0.1:7069 -listen 127.0.0.1:7070
//	ddsnode -role reshard -admin 127.0.0.1:7069 -split 0        # split shard slot 0 at its range midpoint
//	ddsnode -role reshard -admin 127.0.0.1:7069 -split 0:0.25   # split at a quarter of the range
//	ddsnode -role reshard -admin 127.0.0.1:7069 -merge-range 0  # merge range 0 with the range to its right
//	ddsnode -role reshard -admin 127.0.0.1:7069                 # print the current table and groups
//
// The reply carries the new routing table and the -coordinator string for
// the grown/shrunk cluster. Site processes already running keep their old
// table (the admin path registers no remote sites): restart them after
// resharding, passing -admin so they fetch the live table and groups —
// sites and query clients started with -admin need no -coordinator at all
// and adopt the cluster's actual (post-reshard) partition rather than the
// uniform one. In-process drivers (the chaos tests, ddsbench
// -cluster-bench, examples/cluster) flip live sites online instead.
//
// All nodes of one deployment must share -hash-seed (and -window, if set),
// and a query's -sample must not exceed the coordinators' -sample: each
// shard only retains its bottom-s, so merges are exact only up to size s.
// (-window is the sliding-window length in slots, a protocol parameter;
// -pipeline is the transport's batch-frames-in-flight credit window.
// Replication requires the infinite-window protocol: the sliding-window
// coordinator's candidate store does not fit in a sample frame yet.)
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/hashing"
	"repro/internal/netsim"
	"repro/internal/replica"
	"repro/internal/sliding"
	"repro/internal/stream"
	"repro/internal/wire"
)

func main() {
	var (
		role         = flag.String("role", "coordinator", "coordinator, cluster-coordinator, replica, site, or query")
		listen       = flag.String("listen", "127.0.0.1:7070", "coordinator listen address (cluster shard c member m binds port + c*(replicas+1) + m)")
		coordinator  = flag.String("coordinator", "127.0.0.1:7070", "coordinator shard addresses: shards comma-separated, replica-group members '/'-separated (site/query roles)")
		shards       = flag.Int("shards", 1, "number of coordinator shards (cluster-coordinator role)")
		replicas     = flag.Int("replicas", 0, "warm replicas per shard; > 0 turns each shard into a replica group (cluster-coordinator role)")
		syncInterval = flag.Duration("sync-interval", replica.DefaultSyncInterval, "how often each primary pushes its sample to its replicas (cluster-coordinator role with -replicas)")
		id           = flag.Int("id", 0, "site id (site role)")
		sample       = flag.Int("sample", 20, "sample size s per shard (infinite-window); also the merged query size, which must not exceed the coordinators' s")
		window       = flag.Int64("window", 0, "window size in slots; > 0 switches to the sliding-window protocol")
		streamPath   = flag.String("stream", "", "stream file to replay (site role); '-' reads stdin")
		hashSeed     = flag.Uint64("hash-seed", 20130501, "shared hash-function seed (must match on all nodes)")
		codecName    = flag.String("codec", "json", "wire codec: json or binary (site/query roles)")
		batch        = flag.Int("batch", 1, "offers per batch frame; > 1 enables batched transport (site role)")
		pipeline     = flag.Int("pipeline", 0, "pipelined ingest: max batch frames in flight per connection; 0 or 1 = synchronous request/response (site role; try 8)")
		admin        = flag.String("admin", "", "resharding admin address: the cluster-coordinator role listens on it, the reshard role connects to it")
		split        = flag.String("split", "", "reshard role: split shard slot SLOT (or SLOT:FRAC for a cut at that fraction of its range)")
		mergeRange   = flag.Int("merge-range", -1, "reshard role: merge this range index with the range to its right")
	)
	flag.Parse()

	codec, err := wire.ParseCodec(*codecName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	switch *role {
	case "coordinator":
		runCoordinator(*listen, 1, 0, *syncInterval, *sample, *window, codec, "", *hashSeed)
	case "cluster-coordinator":
		runCoordinator(*listen, *shards, *replicas, *syncInterval, *sample, *window, codec, *admin, *hashSeed)
	case "replica":
		runReplica(*listen, *sample, *window)
	case "site":
		runSite(splitGroups(*coordinator), *admin, *id, *window, *streamPath, *hashSeed, wire.Options{Codec: codec, BatchSize: *batch, Window: *pipeline})
	case "query":
		runQuery(splitGroups(*coordinator), *admin, *sample, *window, codec)
	case "reshard":
		runReshardAdminClient(*admin, *split, *mergeRange)
	default:
		fmt.Fprintf(os.Stderr, "unknown role %q\n", *role)
		os.Exit(2)
	}
}

// splitGroups parses the -coordinator list: shards separated by commas, the
// members of one shard's replica group separated by slashes.
func splitGroups(list string) [][]string {
	var groups [][]string
	for _, shard := range strings.Split(list, ",") {
		var members []string
		for _, a := range strings.Split(shard, "/") {
			if a = strings.TrimSpace(a); a != "" {
				members = append(members, a)
			}
		}
		if len(members) > 0 {
			groups = append(groups, members)
		}
	}
	return groups
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}

func runCoordinator(listen string, shards, replicas int, syncInterval time.Duration, sampleSize int, window int64, codec wire.Codec, admin string, hashSeed uint64) {
	if window > 0 && (replicas > 0 || admin != "") {
		fatal(fmt.Errorf("replication and resharding require the infinite-window protocol (drop -window, -replicas, or -admin)"))
	}
	if replicas > 0 || admin != "" {
		// The resharding driver needs the replica-group server even with
		// R = 0 (groups of one member each).
		runReplicatedCoordinator(listen, shards, replicas, syncInterval, sampleSize, codec, admin, hashSeed)
		return
	}
	newCoord := func(int) netsim.CoordinatorNode { return core.NewInfiniteCoordinator(sampleSize) }
	kind := fmt.Sprintf("infinite-window (s=%d per shard)", sampleSize)
	if window > 0 {
		newCoord = func(int) netsim.CoordinatorNode { return sliding.NewCoordinator() }
		kind = fmt.Sprintf("sliding-window (w=%d slots)", window)
	}
	srv, err := cluster.Listen(listen, shards, newCoord)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("%d-shard %s coordinator\n", srv.Shards(), kind)
	for shard, addr := range srv.Addrs() {
		fmt.Printf("  shard %d listening on %s\n", shard, addr)
	}
	fmt.Println("press Ctrl-C to stop")

	waitForSignal()
	offers, replies, queries := srv.Stats()
	fmt.Printf("\nshutting down: %d offers, %d replies, %d queries served", offers, replies, queries)
	if shards > 1 {
		fmt.Printf(" (per-shard offers: %v)", srv.ShardStats())
	}
	fmt.Println()
	mergeSize := sampleSize
	if window > 0 {
		mergeSize = 1 // the window sample is the single minimum across shards
	}
	fmt.Println("final merged sample:")
	for _, e := range srv.MergedSample(mergeSize) {
		fmt.Printf("  %-40s h=%.6f\n", e.Key, e.Hash)
	}
	_ = srv.Close()
}

func runReplicatedCoordinator(listen string, shards, replicas int, syncInterval time.Duration, sampleSize int, codec wire.Codec, admin string, hashSeed uint64) {
	router := cluster.NewShardRouter(shards, hashing.NewMurmur2(hashSeed))
	srv, err := replica.Listen(listen, shards, replica.Options{
		Replicas:     replicas,
		SyncInterval: syncInterval,
		Codec:        codec,
		RouteHash:    router.RouteHash,
	}, func(int, int) netsim.CoordinatorNode {
		return core.NewInfiniteCoordinator(sampleSize)
	})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("%d-shard infinite-window coordinator (s=%d per shard), %d warm replica(s) per shard, sync every %v\n",
		srv.Shards(), sampleSize, replicas, syncInterval)
	groups := srv.GroupAddrs()
	for shard, members := range groups {
		fmt.Printf("  shard %d: primary %s, replicas %s\n", shard, members[0], strings.Join(members[1:], " "))
	}
	fmt.Printf("site/query -coordinator value: %s\n", coordinatorArg(groups))
	if admin != "" {
		rs := cluster.NewResharder(srv, router.Table(), codec)
		bound, err := serveReshardAdmin(admin, rs)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("reshard admin listening on %s (ddsnode -role reshard -admin %s ...)\n", bound, bound)
	}
	fmt.Println("press Ctrl-C to stop")

	waitForSignal()
	offers, replies, queries := srv.Stats()
	fmt.Printf("\nshutting down: %d offers, %d replies, %d queries served\n", offers, replies, queries)
	for shard, members := range srv.GroupAddrs() {
		if members == nil {
			fmt.Printf("  shard %d: retired by resharding\n", shard)
			continue
		}
		fmt.Printf("  shard %d primary: member %d (epochs %v)\n", shard, srv.PrimaryIndex(shard), srv.Epochs(shard))
	}
	if samples, err := srv.PrimarySamples(); err == nil {
		fmt.Println("final merged sample:")
		for _, e := range cluster.Merge(sampleSize, samples...) {
			fmt.Printf("  %-40s h=%.6f\n", e.Key, e.Hash)
		}
	}
	_ = srv.Close()
}

// coordinatorArg renders slot-indexed groups as a -coordinator flag value
// (shards comma-separated, members slash-separated, retired slots skipped).
func coordinatorArg(groups [][]string) string {
	var shardArgs []string
	for _, members := range groups {
		if len(members) == 0 {
			continue
		}
		shardArgs = append(shardArgs, strings.Join(members, "/"))
	}
	return strings.Join(shardArgs, ",")
}

// adminRequest is one resharding command on the admin connection (JSON, one
// object per line). Op is "split", "merge", or "table".
type adminRequest struct {
	Op    string  `json:"op"`
	Slot  int     `json:"slot,omitempty"`
	Frac  float64 `json:"frac,omitempty"`
	Range int     `json:"range,omitempty"`
}

// adminResponse answers an admin request with the (possibly new) routing
// state. Coordinator is the ready-to-paste -coordinator value for sites and
// query clients. NOTE: site processes already connected keep routing by
// their old table — restart them with the new Coordinator value; the admin
// path performs the server-side handoffs only.
type adminResponse struct {
	Version     uint64   `json:"version"`
	Bounds      []uint64 `json:"bounds"`
	Slots       []int    `json:"slots"`
	Coordinator string   `json:"coordinator"`
	// Groups is slot-indexed (nil entries for retired slots), aligning with
	// Slots — what a joining site needs to dial the current partition.
	Groups [][]string             `json:"groups"`
	Report *cluster.ReshardReport `json:"report,omitempty"`
	Error  string                 `json:"error,omitempty"`
}

// serveReshardAdmin starts the admin listener and returns its bound address.
func serveReshardAdmin(addr string, rs *cluster.Resharder) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go handleReshardAdmin(conn, rs)
		}
	}()
	return ln.Addr().String(), nil
}

func handleReshardAdmin(conn net.Conn, rs *cluster.Resharder) {
	defer conn.Close()
	var req adminRequest
	if err := json.NewDecoder(conn).Decode(&req); err != nil {
		_ = json.NewEncoder(conn).Encode(adminResponse{Error: "bad request: " + err.Error()})
		return
	}
	var resp adminResponse
	switch req.Op {
	case "split":
		table := rs.Table()
		mid, err := table.SplitPoint(req.Slot, req.Frac)
		if err == nil {
			resp.Report, err = rs.Split(req.Slot, mid)
		}
		if err != nil {
			resp.Error = err.Error()
		}
	case "merge":
		rep, err := rs.MergeAt(req.Range)
		if err != nil {
			resp.Error = err.Error()
		} else {
			resp.Report = rep
		}
	case "table", "":
		// Read-only.
	default:
		resp.Error = fmt.Sprintf("unknown op %q (want split, merge, or table)", req.Op)
	}
	table := rs.Table()
	resp.Version, resp.Bounds, resp.Slots = table.Version, table.Bounds, table.Slots
	resp.Groups = rs.Groups()
	resp.Coordinator = coordinatorArg(resp.Groups)
	_ = json.NewEncoder(conn).Encode(resp)
}

// adminRoundTrip sends one command to a coordinator's admin listener and
// returns the decoded reply (request and reply are one JSON object each).
func adminRoundTrip(admin string, req adminRequest) (adminResponse, error) {
	var resp adminResponse
	conn, err := net.Dial("tcp", admin)
	if err != nil {
		return resp, err
	}
	defer conn.Close()
	if err := json.NewEncoder(conn).Encode(req); err != nil {
		return resp, err
	}
	if err := json.NewDecoder(conn).Decode(&resp); err != nil {
		return resp, err
	}
	if resp.Error != "" {
		return resp, fmt.Errorf("admin: %s", resp.Error)
	}
	return resp, nil
}

// fetchAdminTable asks a coordinator's admin listener for the current
// routing table and slot-indexed groups, so joining sites and query clients
// adopt the real (possibly resharded) partition instead of assuming the
// uniform one.
func fetchAdminTable(admin string) (cluster.RangeTable, [][]string, error) {
	resp, err := adminRoundTrip(admin, adminRequest{Op: "table"})
	if err != nil {
		return cluster.RangeTable{}, nil, err
	}
	return cluster.RangeTable{Version: resp.Version, Bounds: resp.Bounds, Slots: resp.Slots}, resp.Groups, nil
}

// runReshardAdminClient implements -role reshard: send one command to a
// coordinator's admin listener and print the reply.
func runReshardAdminClient(admin, split string, mergeRange int) {
	if admin == "" {
		fmt.Fprintln(os.Stderr, "reshard role requires -admin (the coordinator's admin address)")
		os.Exit(2)
	}
	req := adminRequest{Op: "table"}
	switch {
	case split != "" && mergeRange >= 0:
		fmt.Fprintln(os.Stderr, "choose one of -split or -merge-range")
		os.Exit(2)
	case split != "":
		req.Op = "split"
		spec := split
		if slot, fracStr, ok := strings.Cut(spec, ":"); ok {
			spec = slot
			frac, err := strconv.ParseFloat(fracStr, 64)
			if err != nil {
				fatal(fmt.Errorf("bad -split fraction %q: %w", fracStr, err))
			}
			req.Frac = frac
		}
		slot, err := strconv.Atoi(spec)
		if err != nil {
			fatal(fmt.Errorf("bad -split slot %q: %w", spec, err))
		}
		req.Slot = slot
	case mergeRange >= 0:
		req.Op = "merge"
		req.Range = mergeRange
	}
	resp, err := adminRoundTrip(admin, req)
	if err != nil {
		fatal(err)
	}
	if resp.Report != nil {
		fmt.Printf("%s v%d: moved range [%#x, %#x) from slot %d to slot %d (%d+%d entries, cutover %v, total %v)\n",
			resp.Report.Op, resp.Report.Version, resp.Report.Lo, resp.Report.Hi, resp.Report.Donor, resp.Report.Successor,
			resp.Report.WarmEntries, resp.Report.SettleEntries, resp.Report.CutoverStall, resp.Report.Total)
	}
	fmt.Printf("routing table v%d over %d range(s):\n", resp.Version, len(resp.Bounds))
	for i, b := range resp.Bounds {
		fmt.Printf("  [%#016x, ...) -> slot %d\n", b, resp.Slots[i])
	}
	fmt.Printf("site/query -coordinator value: %s\n", resp.Coordinator)
	fmt.Println("note: restart running site processes with -admin so they fetch this table (the admin path does not flip remote sites, and -coordinator alone would assume the uniform partition)")
}

// runReplica runs one standalone warm replica: a restorable infinite-window
// coordinator that waits for a primary's state-sync pushes and serves ingest
// once promoted.
func runReplica(listen string, sampleSize int, window int64) {
	if window > 0 {
		fatal(fmt.Errorf("replication requires the infinite-window protocol (drop -window)"))
	}
	srv := wire.NewCoordinatorServer(core.NewInfiniteCoordinator(sampleSize))
	addr, err := srv.Listen(listen)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("warm replica (s=%d) listening on %s: accepting state-sync, promote, and (once promoted) ingest\n", sampleSize, addr)
	fmt.Println("press Ctrl-C to stop")
	waitForSignal()
	offers, replies, queries := srv.Stats()
	fmt.Printf("\nshutting down: epoch %d (promoted: %v), %d offers, %d replies, %d queries served\n",
		srv.Epoch(), srv.Promoted(), offers, replies, queries)
	fmt.Println("final sample:")
	for _, e := range srv.Sample() {
		fmt.Printf("  %-40s h=%.6f\n", e.Key, e.Hash)
	}
	_ = srv.Close()
}

func waitForSignal() {
	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	<-stop
}

func runSite(groups [][]string, admin string, id int, window int64, streamPath string, hashSeed uint64, opts wire.Options) {
	if streamPath == "" {
		fmt.Fprintln(os.Stderr, "site role requires -stream")
		os.Exit(2)
	}
	hasher := hashing.NewMurmur2(hashSeed)
	var router *cluster.ShardRouter
	if admin != "" {
		// Adopt the cluster's live partition: after resharding, the real
		// range table is not the uniform one a group count would imply.
		table, adminGroups, err := fetchAdminTable(admin)
		if err != nil {
			fatal(err)
		}
		router, err = cluster.NewRangeRouter(table, hasher)
		if err != nil {
			fatal(err)
		}
		groups = adminGroups
		fmt.Printf("adopted routing table v%d (%d ranges) from %s\n", table.Version, table.NumRanges(), admin)
	} else {
		router = cluster.NewShardRouter(len(groups), hasher)
	}
	if len(groups) == 0 {
		fmt.Fprintln(os.Stderr, "site role requires at least one -coordinator address (or -admin)")
		os.Exit(2)
	}
	replicated := false
	for _, members := range groups {
		if len(members) > 1 {
			replicated = true
		}
	}
	if (replicated || admin != "") && window > 0 {
		fatal(fmt.Errorf("replication and resharding require the infinite-window protocol (drop -window, the replica addresses, or -admin)"))
	}
	in := os.Stdin
	if streamPath != "-" {
		f, err := os.Open(streamPath)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		in = f
	}
	elements, err := stream.Read(in)
	if err != nil {
		fatal(err)
	}

	newSite := func(int) netsim.SiteNode { return core.NewInfiniteSite(id, hasher) }
	if window > 0 {
		newSite = func(shard int) netsim.SiteNode {
			return sliding.NewSite(id, hasher, window, uint64(id*len(groups)+shard)+1)
		}
	}
	client, err := cluster.DialGroups(groups, router, newSite, opts)
	if err != nil {
		fatal(err)
	}
	defer client.Close()

	lastSlot := int64(-1)
	for _, e := range elements {
		if window > 0 && lastSlot >= 0 && e.Slot > lastSlot {
			// Close out every slot between arrivals so expiries fire.
			for slot := lastSlot; slot < e.Slot; slot++ {
				if err := client.EndSlot(slot); err != nil {
					fatal(err)
				}
			}
		}
		if err := client.Observe(e.Key, e.Slot); err != nil {
			fatal(err)
		}
		lastSlot = e.Slot
	}
	if window > 0 && lastSlot >= 0 {
		if err := client.EndSlot(lastSlot); err != nil {
			fatal(err)
		}
	}
	if err := client.Flush(); err != nil {
		fatal(err)
	}
	mode := "sync"
	if opts.Window > 1 {
		mode = fmt.Sprintf("pipelined window %d", opts.Window)
	}
	fmt.Printf("site %d replayed %d elements to %d shard(s) [%s, batch %d, %s]: %d offers sent, %d replies received",
		id, len(elements), len(groups), opts.Codec, opts.BatchSize, mode, client.MessagesSent(), client.MessagesReceived())
	if n, stall := client.Failovers(); n > 0 {
		fmt.Printf("; survived %d failover(s), %.0f ms stalled", n, float64(stall)/float64(time.Millisecond))
	}
	fmt.Println()
}

func runQuery(groups [][]string, admin string, sampleSize int, window int64, codec wire.Codec) {
	if admin != "" {
		_, adminGroups, err := fetchAdminTable(admin)
		if err != nil {
			fatal(err)
		}
		groups = adminGroups
	}
	live := 0
	for _, members := range groups {
		if len(members) > 0 {
			live++
		}
	}
	if live == 0 {
		fmt.Fprintln(os.Stderr, "query role requires at least one -coordinator address (or -admin)")
		os.Exit(2)
	}
	// Sliding-window shards each hold at most one live entry; the global
	// window sample is the single minimum across them, and the KMV
	// distinct-count estimator does not apply.
	if window > 0 {
		sampleSize = 1
	}
	entries, err := cluster.QueryGroups(groups, sampleSize, codec)
	if err != nil {
		fatal(err)
	}
	scope := "distinct sample"
	if window > 0 {
		scope = "window sample"
	}
	if live > 1 {
		scope = fmt.Sprintf("merged %s across %d shards", scope, live)
	}
	fmt.Printf("%s (%d entries):\n", scope, len(entries))
	for _, e := range entries {
		fmt.Printf("  %-40s h=%.6f\n", e.Key, e.Hash)
	}
	if window > 0 || len(entries) == 0 {
		return
	}
	est, err := cluster.DistinctCount(sampleSize, entries)
	switch {
	case err != nil:
		fmt.Printf("distinct-count estimate unavailable: %v\n", err)
	case len(entries) < sampleSize:
		// The sample holds the whole distinct population: exact answer.
		fmt.Printf("exact distinct elements: %.0f (population smaller than s=%d)\n", est.Estimate, sampleSize)
	default:
		fmt.Printf("estimated distinct elements: %.0f  (95%% CI %.0f – %.0f)\n",
			est.Estimate, est.Low, est.High)
	}
}
