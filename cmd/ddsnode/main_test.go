package main

import (
	"strings"
	"testing"
	"time"
)

// validFlags returns a flag set that passes validation, for the table to
// perturb.
func validFlags() nodeFlags {
	return nodeFlags{
		Role:         "coordinator",
		Listen:       "127.0.0.1:0",
		Coordinator:  "127.0.0.1:7070",
		Shards:       1,
		Replicas:     0,
		SyncInterval: 100 * time.Millisecond,
		Sample:       20,
		Codec:        "binary",
		Batch:        1,
		Pipeline:     0,
		MergeRange:   -1,

		WatchHigh:     0.65,
		WatchLow:      0.15,
		WatchCooldown: 2 * time.Second,
		WatchInterval: 250 * time.Millisecond,
	}
}

// TestValidateFlags table-drives the contradictory-combination checks: every
// rejected combo must produce an actionable error naming the offending flag,
// and every sensible combo must pass — including the sliding-window +
// replication pairing the unified sampler API made legal.
func TestValidateFlags(t *testing.T) {
	cases := []struct {
		name    string
		mutate  func(*nodeFlags)
		wantErr string // substring of the expected error; "" means valid
	}{
		{"defaults", func(f *nodeFlags) {}, ""},
		{"unknown role", func(f *nodeFlags) { f.Role = "observer" }, "unknown role"},
		{"unknown codec", func(f *nodeFlags) { f.Codec = "protobuf" }, "unknown codec"},
		{"zero sample", func(f *nodeFlags) { f.Sample = 0 }, "-sample"},
		{"negative window", func(f *nodeFlags) { f.Window = -5 }, "-window"},
		{"zero shards", func(f *nodeFlags) { f.Role = "cluster-coordinator"; f.Shards = 0 }, "-shards"},
		{"negative replicas", func(f *nodeFlags) { f.Role = "cluster-coordinator"; f.Replicas = -1 }, "-replicas"},
		{"zero sync interval", func(f *nodeFlags) { f.Role = "cluster-coordinator"; f.Replicas = 1; f.SyncInterval = 0 }, "-sync-interval"},
		{"zero batch", func(f *nodeFlags) { f.Batch = 0 }, "-batch"},
		{"negative lease", func(f *nodeFlags) {
			f.Role = "cluster-coordinator"
			f.Replicas = 1
			f.Lease = -time.Second
		}, "-lease-interval"},
		{"lease not exceeding sync interval", func(f *nodeFlags) {
			f.Role = "cluster-coordinator"
			f.Replicas = 1
			f.Lease = 100 * time.Millisecond
		}, "must exceed -sync-interval"},
		{"lease without replicas", func(f *nodeFlags) {
			f.Role = "cluster-coordinator"
			f.Lease = time.Second
		}, "-lease-interval needs -replicas"},
		{"leased replicated cluster is fine", func(f *nodeFlags) {
			f.Role = "cluster-coordinator"
			f.Replicas = 1
			f.Lease = time.Second
		}, ""},
		{"negative retry base", func(f *nodeFlags) { f.RetryBase = -time.Millisecond }, "-retry-base"},
		{"negative retry max is fine", func(f *nodeFlags) {
			f.Role = "site"
			f.Stream = "-"
			f.RetryMax = -1
		}, ""},
		{"pipeline of one", func(f *nodeFlags) { f.Pipeline = 1 }, "-pipeline 1 is not a pipeline"},
		{"negative pipeline", func(f *nodeFlags) { f.Pipeline = -3 }, "not a pipeline"},
		{"pipeline of two is fine", func(f *nodeFlags) { f.Pipeline = 2 }, ""},
		{"reshard without admin", func(f *nodeFlags) { f.Role = "reshard" }, "-role reshard requires -admin"},
		{"reshard split and merge", func(f *nodeFlags) {
			f.Role = "reshard"
			f.Admin = "127.0.0.1:7069"
			f.Split = "0"
			f.MergeRange = 1
		}, "mutually exclusive"},
		{"reshard bad split slot", func(f *nodeFlags) {
			f.Role = "reshard"
			f.Admin = "127.0.0.1:7069"
			f.Split = "zero"
		}, "bad -split slot"},
		{"reshard bad split fraction", func(f *nodeFlags) {
			f.Role = "reshard"
			f.Admin = "127.0.0.1:7069"
			f.Split = "0:1.5"
		}, "bad -split fraction"},
		{"reshard split with fraction is fine", func(f *nodeFlags) {
			f.Role = "reshard"
			f.Admin = "127.0.0.1:7069"
			f.Split = "2:0.25"
		}, ""},
		{"site without stream", func(f *nodeFlags) { f.Role = "site" }, "-role site requires -stream"},
		{"site with stream is fine", func(f *nodeFlags) { f.Role = "site"; f.Stream = "-" }, ""},
		{"site without any coordinator", func(f *nodeFlags) {
			f.Role = "site"
			f.Stream = "-"
			f.Coordinator = ""
		}, "requires -coordinator"},
		{"site with admin only is fine", func(f *nodeFlags) {
			f.Role = "site"
			f.Stream = "-"
			f.Coordinator = ""
			f.Admin = "127.0.0.1:7069"
		}, ""},
		{"query without any coordinator", func(f *nodeFlags) {
			f.Role = "query"
			f.Coordinator = ""
		}, "requires -coordinator"},
		// The pairing the unified Snapshot/Restore API legalized: sliding
		// window + replication (and resharding) used to be rejected here.
		{"sliding window with replicas is fine", func(f *nodeFlags) {
			f.Role = "cluster-coordinator"
			f.Window = 100
			f.Replicas = 2
		}, ""},
		{"sliding window with admin is fine", func(f *nodeFlags) {
			f.Role = "cluster-coordinator"
			f.Window = 100
			f.Admin = "127.0.0.1:7069"
		}, ""},
		// The -metrics listener must be a real address and must not collide
		// with the data or admin listeners (all three are separate servers).
		{"metrics is fine", func(f *nodeFlags) { f.Metrics = "127.0.0.1:9100" }, ""},
		{"malformed metrics addr", func(f *nodeFlags) { f.Metrics = "no-port" }, "not a host:port"},
		{"metrics collides with listen", func(f *nodeFlags) {
			f.Listen = "127.0.0.1:7071"
			f.Metrics = "127.0.0.1:7071"
		}, "collides with -listen"},
		{"metrics collides with admin", func(f *nodeFlags) {
			f.Admin = "127.0.0.1:7069"
			f.Metrics = "127.0.0.1:7069"
		}, "collides with -admin"},
		{"scrape without endpoint", func(f *nodeFlags) { f.Role = "scrape" }, "-role scrape requires -scrape"},
		{"scrape with endpoint is fine", func(f *nodeFlags) {
			f.Role = "scrape"
			f.Scrape = "127.0.0.1:9100"
		}, ""},
		// -trace-sample is a probability and only meaningful on nodes that
		// record spans — the scrape client records none.
		{"trace sample above one", func(f *nodeFlags) { f.TraceSample = 1.5 }, "-trace-sample"},
		{"negative trace sample", func(f *nodeFlags) { f.TraceSample = -0.01 }, "-trace-sample"},
		{"trace sample on scrape role", func(f *nodeFlags) {
			f.Role = "scrape"
			f.Scrape = "127.0.0.1:9100"
			f.TraceSample = 0.5
		}, "meaningless for -role scrape"},
		// -autoreshard arms a control loop that mutates the partition on its
		// own; it must be observable (-metrics), auditable (-admin), and its
		// hysteresis knobs must make sense before any socket opens.
		{"autoreshard armed properly is fine", func(f *nodeFlags) {
			f.Role = "cluster-coordinator"
			f.Shards = 2
			f.Admin = "127.0.0.1:7069"
			f.Metrics = "127.0.0.1:9100"
			f.AutoReshard = true
		}, ""},
		{"autoreshard without admin", func(f *nodeFlags) {
			f.Role = "cluster-coordinator"
			f.Metrics = "127.0.0.1:9100"
			f.AutoReshard = true
		}, "-autoreshard requires -admin"},
		{"autoreshard without metrics", func(f *nodeFlags) {
			f.Role = "cluster-coordinator"
			f.Admin = "127.0.0.1:7069"
			f.AutoReshard = true
		}, "-autoreshard requires -metrics"},
		{"autoreshard on site role", func(f *nodeFlags) {
			f.Role = "site"
			f.Stream = "-"
			f.Admin = "127.0.0.1:7069"
			f.Metrics = "127.0.0.1:9100"
			f.AutoReshard = true
		}, "only applies to coordinator roles"},
		{"watch high above one", func(f *nodeFlags) { f.WatchHigh = 1.2 }, "watermarks"},
		{"watch low above high", func(f *nodeFlags) { f.WatchLow = 0.8 }, "watermarks"},
		{"zero watch low", func(f *nodeFlags) { f.WatchLow = 0 }, "watermarks"},
		{"zero watch cooldown", func(f *nodeFlags) { f.WatchCooldown = 0 }, "-watch-cooldown"},
		{"negative watch interval", func(f *nodeFlags) { f.WatchInterval = -time.Second }, "-watch-interval"},
		// The durability flags: snapshot tuning without a spool directory is a
		// no-op the operator almost certainly did not intend, -data-dir only
		// makes sense where shards live, and negative tunings are nonsense.
		{"data dir on coordinator is fine", func(f *nodeFlags) { f.DataDir = "/tmp/dds" }, ""},
		{"data dir with tuning is fine", func(f *nodeFlags) {
			f.Role = "cluster-coordinator"
			f.DataDir = "/tmp/dds"
			f.SnapInterval = 500 * time.Millisecond
			f.SnapRetain = 5
		}, ""},
		{"data dir on site role", func(f *nodeFlags) {
			f.Role = "site"
			f.Stream = "-"
			f.DataDir = "/tmp/dds"
		}, "-data-dir only applies to coordinator roles"},
		{"snap interval without data dir", func(f *nodeFlags) { f.SnapInterval = time.Second }, "need -data-dir"},
		{"snap retain without data dir", func(f *nodeFlags) { f.SnapRetain = 5 }, "need -data-dir"},
		{"negative snap interval", func(f *nodeFlags) {
			f.DataDir = "/tmp/dds"
			f.SnapInterval = -time.Second
		}, "-snap-interval"},
		{"negative snap retain", func(f *nodeFlags) {
			f.DataDir = "/tmp/dds"
			f.SnapRetain = -1
		}, "-snap-retain"},
		{"one percent trace sample is fine", func(f *nodeFlags) { f.TraceSample = 0.01 }, ""},
		{"full trace sample is fine", func(f *nodeFlags) {
			f.Role = "cluster-coordinator"
			f.TraceSample = 1
		}, ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			f := validFlags()
			tc.mutate(&f)
			err := validateFlags(f)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("validateFlags(%+v) = %v, want nil", f, err)
				}
				return
			}
			if err == nil {
				t.Fatalf("validateFlags(%+v) = nil, want error containing %q", f, tc.wantErr)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("validateFlags error %q does not mention %q", err, tc.wantErr)
			}
		})
	}
}

// TestSplitGroups pins the -coordinator syntax.
func TestSplitGroups(t *testing.T) {
	groups := splitGroups("a:1/b:1, c:2 ,d:3/e:3/f:3")
	want := [][]string{{"a:1", "b:1"}, {"c:2"}, {"d:3", "e:3", "f:3"}}
	if len(groups) != len(want) {
		t.Fatalf("splitGroups = %v, want %v", groups, want)
	}
	for i := range want {
		if len(groups[i]) != len(want[i]) {
			t.Fatalf("group %d = %v, want %v", i, groups[i], want[i])
		}
		for j := range want[i] {
			if groups[i][j] != want[i][j] {
				t.Fatalf("group %d member %d = %q, want %q", i, j, groups[i][j], want[i][j])
			}
		}
	}
}
