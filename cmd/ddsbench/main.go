// Command ddsbench regenerates the paper's tables and figures (and the
// extension experiments) from the synthetic datasets, printing each result
// as an aligned table or CSV.
//
// Usage:
//
//	ddsbench -list
//	ddsbench -experiment fig5.4
//	ddsbench -experiment all -format csv -runs 10
//	ddsbench -experiment fig5.7 -oc48-scale 0.05 -enron-scale 0.5
//	ddsbench -experiment table5.1 -paper        # full paper-scale sizes
//	ddsbench -cluster-bench -out BENCH_cluster.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/cluster"
	"repro/internal/experiments"
	"repro/internal/plot"
	"repro/internal/wire"
)

func main() {
	var (
		experiment = flag.String("experiment", "all", "experiment id (see -list) or \"all\"")
		list       = flag.Bool("list", false, "list available experiments and exit")
		format     = flag.String("format", "table", "output format: table or csv")
		plotFlag   = flag.Bool("plot", false, "also render an ASCII chart for experiments that describe one")
		runs       = flag.Int("runs", 0, "override the number of runs averaged per data point")
		oc48Scale  = flag.Float64("oc48-scale", 0, "override the OC48 dataset scale (1 = paper size)")
		enronScale = flag.Float64("enron-scale", 0, "override the Enron dataset scale (1 = paper size)")
		seed       = flag.Uint64("seed", 0, "override the master seed")
		paper      = flag.Bool("paper", false, "use the paper's full-scale configuration (slow)")
		quick      = flag.Bool("quick", false, "use the sub-second configuration used by tests")

		clusterBench = flag.Bool("cluster-bench", false, "run the sharded-cluster ingest benchmark and write machine-readable JSON")
		out          = flag.String("out", "BENCH_cluster.json", "output path for -cluster-bench")
		benchElems   = flag.Int("bench-elements", 20000, "stream length for -cluster-bench")
		benchShards  = flag.String("bench-shards", "1,4", "comma-separated shard counts for -cluster-bench")
	)
	flag.Parse()

	if *clusterBench {
		if err := runClusterBench(*out, *benchElems, *benchShards, *seed); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	if *list {
		for _, r := range experiments.Registry() {
			fmt.Printf("%-12s %s\n", r.ID, r.Description)
		}
		return
	}

	cfg := experiments.DefaultConfig()
	if *paper {
		cfg = experiments.PaperConfig()
	}
	if *quick {
		cfg = experiments.QuickConfig()
	}
	if *runs > 0 {
		cfg.Runs = *runs
		cfg.SlidingRuns = *runs
	}
	if *oc48Scale > 0 {
		cfg.OC48Scale = *oc48Scale
	}
	if *enronScale > 0 {
		cfg.EnronScale = *enronScale
	}
	if *seed != 0 {
		cfg.Seed = *seed
	}

	var selected []experiments.Runner
	if *experiment == "all" {
		selected = experiments.Registry()
	} else {
		for _, id := range strings.Split(*experiment, ",") {
			r, ok := experiments.ByID(strings.TrimSpace(id))
			if !ok {
				fmt.Fprintf(os.Stderr, "unknown experiment %q; available: %s\n",
					id, strings.Join(experiments.IDs(), ", "))
				os.Exit(2)
			}
			selected = append(selected, r)
		}
	}

	for _, r := range selected {
		start := time.Now()
		table := r.Run(cfg)
		switch *format {
		case "csv":
			fmt.Print(table.CSV())
		default:
			fmt.Print(table.String())
		}
		if *plotFlag && table.Plot != nil {
			chart := &plot.Chart{
				Title:  table.Title,
				XLabel: table.Columns[table.Plot.X],
				YLabel: table.Columns[table.Plot.Y],
				LogX:   table.Plot.LogX,
				LogY:   table.Plot.LogY,
			}
			for _, s := range plot.FromRows(table.Rows, table.Plot.Group, table.Plot.X, table.Plot.Y) {
				chart.Add(s.Name, s.Points)
			}
			fmt.Println()
			fmt.Print(chart.Render())
		}
		fmt.Fprintf(os.Stderr, "[%s completed in %v]\n\n", r.ID, time.Since(start).Round(time.Millisecond))
	}
}

// clusterBenchReport is the schema of BENCH_cluster.json: every transport ×
// shard-count combination measured, plus the headline speedup of the batched
// binary transport over the JSON-per-offer baseline at equal shard count, so
// future changes can track the performance trajectory from one file.
type clusterBenchReport struct {
	GeneratedUnix int64                  `json:"generated_unix"`
	Elements      int                    `json:"elements"`
	Results       []*cluster.BenchResult `json:"results"`
	// SpeedupBinaryBatched maps "shards=N" to (binary batched ops/sec) /
	// (json per-offer ops/sec) for that shard count.
	SpeedupBinaryBatched map[string]float64 `json:"speedup_binary_batched_vs_json"`
}

// runClusterBench measures cluster ingest across the transport matrix and
// writes the machine-readable report to path.
func runClusterBench(path string, elements int, shardList string, seed uint64) error {
	report := &clusterBenchReport{
		GeneratedUnix:        time.Now().Unix(),
		Elements:             elements,
		SpeedupBinaryBatched: make(map[string]float64),
	}
	transports := []struct {
		codec wire.Codec
		batch int
	}{
		{wire.CodecJSON, 1},
		{wire.CodecBinary, 64},
	}
	for _, field := range strings.Split(shardList, ",") {
		shards, err := strconv.Atoi(strings.TrimSpace(field))
		if err != nil || shards < 1 {
			return fmt.Errorf("ddsbench: bad -bench-shards entry %q", field)
		}
		var opsPerSec [2]float64
		for i, tr := range transports {
			cfg := cluster.DefaultBenchConfig()
			cfg.Shards = shards
			cfg.Elements = elements
			cfg.Distinct = elements / 4
			cfg.Codec = tr.codec
			cfg.Batch = tr.batch
			if seed != 0 {
				cfg.Seed = seed
			}
			res, err := cluster.RunIngestBench(cfg)
			if err != nil {
				return err
			}
			report.Results = append(report.Results, res)
			opsPerSec[i] = res.OpsPerSec
			fmt.Fprintf(os.Stderr, "[cluster-bench shards=%d codec=%s batch=%d: %.0f ops/s, %.3f msgs/element]\n",
				shards, res.Codec, res.Batch, res.OpsPerSec, res.MsgsPerElement)
		}
		report.SpeedupBinaryBatched[fmt.Sprintf("shards=%d", shards)] = opsPerSec[1] / opsPerSec[0]
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d results)\n", path, len(report.Results))
	return nil
}
