// Command ddsbench regenerates the paper's tables and figures (and the
// extension experiments) from the synthetic datasets, printing each result
// as an aligned table or CSV.
//
// Usage:
//
//	ddsbench -list
//	ddsbench -experiment fig5.4
//	ddsbench -experiment all -format csv -runs 10
//	ddsbench -experiment fig5.7 -oc48-scale 0.05 -enron-scale 0.5
//	ddsbench -experiment table5.1 -paper        # full paper-scale sizes
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/experiments"
	"repro/internal/plot"
)

func main() {
	var (
		experiment = flag.String("experiment", "all", "experiment id (see -list) or \"all\"")
		list       = flag.Bool("list", false, "list available experiments and exit")
		format     = flag.String("format", "table", "output format: table or csv")
		plotFlag   = flag.Bool("plot", false, "also render an ASCII chart for experiments that describe one")
		runs       = flag.Int("runs", 0, "override the number of runs averaged per data point")
		oc48Scale  = flag.Float64("oc48-scale", 0, "override the OC48 dataset scale (1 = paper size)")
		enronScale = flag.Float64("enron-scale", 0, "override the Enron dataset scale (1 = paper size)")
		seed       = flag.Uint64("seed", 0, "override the master seed")
		paper      = flag.Bool("paper", false, "use the paper's full-scale configuration (slow)")
		quick      = flag.Bool("quick", false, "use the sub-second configuration used by tests")
	)
	flag.Parse()

	if *list {
		for _, r := range experiments.Registry() {
			fmt.Printf("%-12s %s\n", r.ID, r.Description)
		}
		return
	}

	cfg := experiments.DefaultConfig()
	if *paper {
		cfg = experiments.PaperConfig()
	}
	if *quick {
		cfg = experiments.QuickConfig()
	}
	if *runs > 0 {
		cfg.Runs = *runs
		cfg.SlidingRuns = *runs
	}
	if *oc48Scale > 0 {
		cfg.OC48Scale = *oc48Scale
	}
	if *enronScale > 0 {
		cfg.EnronScale = *enronScale
	}
	if *seed != 0 {
		cfg.Seed = *seed
	}

	var selected []experiments.Runner
	if *experiment == "all" {
		selected = experiments.Registry()
	} else {
		for _, id := range strings.Split(*experiment, ",") {
			r, ok := experiments.ByID(strings.TrimSpace(id))
			if !ok {
				fmt.Fprintf(os.Stderr, "unknown experiment %q; available: %s\n",
					id, strings.Join(experiments.IDs(), ", "))
				os.Exit(2)
			}
			selected = append(selected, r)
		}
	}

	for _, r := range selected {
		start := time.Now()
		table := r.Run(cfg)
		switch *format {
		case "csv":
			fmt.Print(table.CSV())
		default:
			fmt.Print(table.String())
		}
		if *plotFlag && table.Plot != nil {
			chart := &plot.Chart{
				Title:  table.Title,
				XLabel: table.Columns[table.Plot.X],
				YLabel: table.Columns[table.Plot.Y],
				LogX:   table.Plot.LogX,
				LogY:   table.Plot.LogY,
			}
			for _, s := range plot.FromRows(table.Rows, table.Plot.Group, table.Plot.X, table.Plot.Y) {
				chart.Add(s.Name, s.Points)
			}
			fmt.Println()
			fmt.Print(chart.Render())
		}
		fmt.Fprintf(os.Stderr, "[%s completed in %v]\n\n", r.ID, time.Since(start).Round(time.Millisecond))
	}
}
