// Command ddsbench regenerates the paper's tables and figures (and the
// extension experiments) from the synthetic datasets, printing each result
// as an aligned table or CSV.
//
// Usage:
//
//	ddsbench -list
//	ddsbench -experiment fig5.4
//	ddsbench -experiment all -format csv -runs 10
//	ddsbench -experiment fig5.7 -oc48-scale 0.05 -enron-scale 0.5
//	ddsbench -experiment table5.1 -paper        # full paper-scale sizes
//	ddsbench -cluster-bench -out BENCH_cluster.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/dds"
	"repro/internal/cluster"
	"repro/internal/experiments"
	"repro/internal/obs"
	"repro/internal/plot"
	"repro/internal/wire"
)

func main() {
	var (
		experiment = flag.String("experiment", "all", "experiment id (see -list) or \"all\"")
		list       = flag.Bool("list", false, "list available experiments and exit")
		format     = flag.String("format", "table", "output format: table or csv")
		plotFlag   = flag.Bool("plot", false, "also render an ASCII chart for experiments that describe one")
		runs       = flag.Int("runs", 0, "override the number of runs averaged per data point")
		oc48Scale  = flag.Float64("oc48-scale", 0, "override the OC48 dataset scale (1 = paper size)")
		enronScale = flag.Float64("enron-scale", 0, "override the Enron dataset scale (1 = paper size)")
		seed       = flag.Uint64("seed", 0, "override the master seed")
		paper      = flag.Bool("paper", false, "use the paper's full-scale configuration (slow)")
		quick      = flag.Bool("quick", false, "use the sub-second configuration used by tests")

		clusterBench  = flag.Bool("cluster-bench", false, "run the sharded-cluster ingest benchmark and write machine-readable JSON")
		out           = flag.String("out", "BENCH_cluster.json", "output path for -cluster-bench")
		benchElems    = flag.Int("bench-elements", 20000, "stream length for -cluster-bench")
		benchShards   = flag.String("bench-shards", "1,4", "comma-separated shard counts for -cluster-bench")
		benchWindows  = flag.String("bench-windows", "1,2,4,8,16,32", "comma-separated pipeline window sizes for the -cluster-bench pipeline sweep (1 = synchronous)")
		requireSpeed  = flag.Float64("require-pipeline-speedup", 0, "fail -cluster-bench unless the best pipelined window beats the synchronous path by this factor (0 disables; CI uses 1.0)")
		benchFailover = flag.Bool("bench-failover", true, "include the kill/promote failover benchmark in -cluster-bench (fails on reference divergence)")
		benchReshard  = flag.Bool("bench-reshard", true, "include the online split/merge reshard benchmark in -cluster-bench (fails on reference divergence)")
		benchAutoPlt  = flag.Bool("bench-autopilot", true, "include the autopilot resharding benchmark in -cluster-bench: a watcher-initiated split under Zipf-skewed ingest, no manual plan (fails on reference divergence)")
		benchSlidingF = flag.Bool("bench-sliding-failover", true, "include the sliding-window kill/promote benchmark in -cluster-bench (fails on window-minimum divergence)")
		benchTracing  = flag.Bool("bench-tracing", true, "include the trace-sampling overhead comparison in -cluster-bench (ingest at sample rates 0, 0.01, 1.0)")
		benchDurable  = flag.Bool("bench-durability", true, "include the durability benchmark in -cluster-bench: spool-on vs spool-off ingest, barrier latency, power-loss halt, timed cold restore (fails on reference divergence)")
		benchWindowSl = flag.Int64("bench-window-slots", 60, "sliding-window length in slots for -bench-sliding-failover")
		benchReplicas = flag.Int("bench-replicas", 1, "warm replicas per shard for the failover and reshard benchmarks")
		benchSyncInt  = flag.Duration("bench-sync-interval", 50*time.Millisecond, "replica sync interval for the failover and reshard benchmarks")
	)
	flag.Parse()

	if *clusterBench {
		if err := runClusterBench(*out, *benchElems, *benchShards, *benchWindows, *seed, *requireSpeed, *benchFailover, *benchReshard, *benchAutoPlt, *benchSlidingF, *benchTracing, *benchDurable, *benchWindowSl, *benchReplicas, *benchSyncInt); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	if *list {
		for _, r := range experiments.Registry() {
			fmt.Printf("%-12s %s\n", r.ID, r.Description)
		}
		return
	}

	cfg := experiments.DefaultConfig()
	if *paper {
		cfg = experiments.PaperConfig()
	}
	if *quick {
		cfg = experiments.QuickConfig()
	}
	if *runs > 0 {
		cfg.Runs = *runs
		cfg.SlidingRuns = *runs
	}
	if *oc48Scale > 0 {
		cfg.OC48Scale = *oc48Scale
	}
	if *enronScale > 0 {
		cfg.EnronScale = *enronScale
	}
	if *seed != 0 {
		cfg.Seed = *seed
	}

	var selected []experiments.Runner
	if *experiment == "all" {
		selected = experiments.Registry()
	} else {
		for _, id := range strings.Split(*experiment, ",") {
			r, ok := experiments.ByID(strings.TrimSpace(id))
			if !ok {
				fmt.Fprintf(os.Stderr, "unknown experiment %q; available: %s\n",
					id, strings.Join(experiments.IDs(), ", "))
				os.Exit(2)
			}
			selected = append(selected, r)
		}
	}

	for _, r := range selected {
		start := time.Now()
		table := r.Run(cfg)
		switch *format {
		case "csv":
			fmt.Print(table.CSV())
		default:
			fmt.Print(table.String())
		}
		if *plotFlag && table.Plot != nil {
			chart := &plot.Chart{
				Title:  table.Title,
				XLabel: table.Columns[table.Plot.X],
				YLabel: table.Columns[table.Plot.Y],
				LogX:   table.Plot.LogX,
				LogY:   table.Plot.LogY,
			}
			for _, s := range plot.FromRows(table.Rows, table.Plot.Group, table.Plot.X, table.Plot.Y) {
				chart.Add(s.Name, s.Points)
			}
			fmt.Println()
			fmt.Print(chart.Render())
		}
		fmt.Fprintf(os.Stderr, "[%s completed in %v]\n\n", r.ID, time.Since(start).Round(time.Millisecond))
	}
}

// clusterBenchReport is the schema of BENCH_cluster.json: every transport ×
// shard-count combination measured, plus the headline speedup of the batched
// binary transport over the JSON-per-offer baseline at equal shard count, so
// future changes can track the performance trajectory from one file.
type clusterBenchReport struct {
	GeneratedUnix int64                  `json:"generated_unix"`
	Elements      int                    `json:"elements"`
	Results       []*cluster.BenchResult `json:"results"`
	// SpeedupBinaryBatched maps "shards=N" to (binary batched ops/sec) /
	// (json per-offer ops/sec) for that shard count.
	SpeedupBinaryBatched map[string]float64 `json:"speedup_binary_batched_vs_json"`
	// Pipeline is the window-size sweep of the pipelined ingest path.
	Pipeline *pipelineReport `json:"pipeline"`
	// Failover measures ingest throughput across a kill/promote event on
	// replica groups (see cluster.RunFailoverBench). Every run in it has
	// passed the merged-sample-vs-reference byte-identity check.
	Failover *failoverReport `json:"failover,omitempty"`
	// Reshard measures ingest throughput across an online shard split (and a
	// merge reuniting the ranges) — see cluster.RunReshardBench. Every run
	// in it has passed the merged-sample-vs-reference check.
	Reshard *reshardReport `json:"reshard,omitempty"`
	// Autopilot measures hands-off rebalancing: the watcher splitting a hot
	// shard under Zipf-skewed ingest with no manual plan (see
	// cluster.RunAutopilotBench). Every run in it has passed the
	// merged-sample-vs-reference check.
	Autopilot *autopilotReport `json:"autopilot,omitempty"`
	// SlidingFailover measures ingest throughput across a kill/promote event
	// on a sliding-window cluster — replication of the candidate store via
	// the generic state frames (see cluster.RunSlidingFailoverBench). Every
	// run has passed the window-minimum-vs-brute-force check.
	SlidingFailover *slidingFailoverReport `json:"sliding_failover,omitempty"`
	// Tracing compares flood-mode pipelined ingest throughput at trace sample
	// rates 0 (the default: one atomic load per batch, no allocations), 1%
	// (the suggested production rate), and 100% (every batch records a full
	// cross-plane span timeline). The sampled-off run doubles as the proof
	// that carrying trace fields in every wire frame costs nothing when
	// tracing is disabled.
	Tracing *tracingReport `json:"tracing,omitempty"`
	// Durability measures the snapshot spool: ingest throughput with
	// background spooling on vs off, the cost of a forced all-shards spool
	// barrier, and the timed cold restore after a power-loss halt (see
	// cluster.RunDurabilityBench). The run fails unless the restored merged
	// sample matches the centralized reference exactly.
	Durability *durabilityReport `json:"durability,omitempty"`
	// Metrics is the process's full observability snapshot taken after every
	// benchmark section ran: wire frame/byte counters, per-shard offer and
	// churn counters, replica sync totals, failover and reshard phase
	// histograms. Because every section runs in-process against the shared
	// registry, this is the benchmark suite's own flight recording — a
	// regression that changes message efficiency or sync traffic shows up
	// here even when throughput numbers hold steady.
	Metrics *dds.MetricsSnapshot `json:"metrics,omitempty"`
}

// slidingFailoverReport is the sliding_failover section of
// BENCH_cluster.json: one sliding-window kill/promote run per transport
// mode, at the sweep's largest shard count.
type slidingFailoverReport struct {
	Replicas       int                              `json:"replicas"`
	WindowSlots    int64                            `json:"window_slots"`
	SyncIntervalMS float64                          `json:"sync_interval_ms"`
	Runs           []*cluster.SlidingFailoverResult `json:"runs"`
	// WorstPostKillRatio is the min over runs of post-kill / pre-kill
	// throughput.
	WorstPostKillRatio float64 `json:"worst_post_kill_ratio"`
}

// reshardReport is the reshard section of BENCH_cluster.json: one online
// split+merge run per transport mode, at the sweep's largest shard count.
type reshardReport struct {
	Replicas       int                           `json:"replicas"`
	SyncIntervalMS float64                       `json:"sync_interval_ms"`
	Runs           []*cluster.ReshardBenchResult `json:"runs"`
	// WorstDuringRatio is the min over runs of during-split / before-split
	// throughput: how much of the ingest rate survives a live reshard.
	WorstDuringRatio float64 `json:"worst_during_ratio"`
}

// autopilotReport is the autopilot section of BENCH_cluster.json: one
// watcher-initiated split run per transport mode, at the sweep's largest
// shard count.
type autopilotReport struct {
	Replicas       int                             `json:"replicas"`
	SyncIntervalMS float64                         `json:"sync_interval_ms"`
	Runs           []*cluster.AutopilotBenchResult `json:"runs"`
	// WorstDuringRatio is the min over runs of during-rebalance / before
	// throughput: how much of the ingest rate survives the watcher noticing,
	// deliberating, and cutting over. WorstRebalanceLatencySec is the max
	// arming-to-split wall clock.
	WorstDuringRatio         float64 `json:"worst_during_ratio"`
	WorstRebalanceLatencySec float64 `json:"worst_rebalance_latency_sec"`
}

// durabilityReport is the durability section of BENCH_cluster.json: the
// spool-on/spool-off ingest comparison, barrier latency, and power-loss
// restore measurement at the sweep's largest shard count.
type durabilityReport struct {
	Replicas       int                              `json:"replicas"`
	SyncIntervalMS float64                          `json:"sync_interval_ms"`
	Runs           []*cluster.DurabilityBenchResult `json:"runs"`
	// WorstOverheadPct is the max over runs of the spool-on ingest slowdown
	// relative to spool-off — the headline "durability is nearly free" number
	// (a snapshot is one bounded sample encode plus one file write, off the
	// ingest path; the design target keeps this within 10%).
	WorstOverheadPct float64 `json:"worst_overhead_pct"`
	// WorstRestoreSec is the max over runs of the cold-restore wall clock.
	WorstRestoreSec float64 `json:"worst_restore_sec"`
}

// failoverReport is the failover section of BENCH_cluster.json: one
// kill/promote run per transport mode, at the sweep's largest shard count.
type failoverReport struct {
	Replicas       int                       `json:"replicas"`
	SyncIntervalMS float64                   `json:"sync_interval_ms"`
	Runs           []*cluster.FailoverResult `json:"runs"`
	// WorstPostKillRatio is the min over runs of post-kill / pre-kill
	// throughput: how much of the ingest rate survives a primary death
	// (promotion stall included).
	WorstPostKillRatio float64 `json:"worst_post_kill_ratio"`
}

// tracingReport is the tracing section of BENCH_cluster.json: the same
// flood-mode pipelined ingest configuration run at three trace sample rates.
type tracingReport struct {
	Shards int            `json:"shards"`
	Runs   []tracingPoint `json:"runs"`
	// SpansRecorded is how many spans the 100% run left in the flight
	// recorder ring (bounded by the ring size; proves spans actually flowed).
	SpansRecorded int `json:"spans_recorded"`
}

type tracingPoint struct {
	SampleRate float64 `json:"sample_rate"`
	OpsPerSec  float64 `json:"ops_per_sec"`
	// RelativeToOff is this run's ops_per_sec over the sample-rate-0 run's —
	// the throughput retained when tracing at this rate.
	RelativeToOff float64 `json:"relative_to_off"`
}

// pipelineReport compares synchronous and pipelined batched-binary ingest in
// flood mode (one offer per element on the wire), sweeping the credit window
// size at two batch sizes. Flood mode isolates transport throughput: the
// paper's protocol filters almost every arrival locally, so a protocol-mode
// run measures hashing rather than the wire. Two batch sizes because
// pipelining changes the trade-off: the synchronous path needs large batches
// to amortize its per-batch round trip, while the pipelined path sustains
// throughput at small batches too (fresher thresholds, lower latency) — the
// speedup is largest there.
type pipelineReport struct {
	Shards int             `json:"shards"`
	Sweeps []pipelineSweep `json:"sweeps"`
	// BestSpeedupVsSync is the max over all sweeps and windows of
	// ops_per_sec / (that sweep's window-1 ops_per_sec).
	BestSpeedupVsSync float64 `json:"best_speedup_vs_sync"`
	BestBatch         int     `json:"best_batch"`
	BestWindow        int     `json:"best_window"`
}

type pipelineSweep struct {
	Batch int `json:"batch"`
	// Windows lists one measurement per swept window size; window 1 is the
	// synchronous request/response baseline.
	Windows []pipelinePoint `json:"windows"`
}

type pipelinePoint struct {
	Window        int     `json:"window"`
	OpsPerSec     float64 `json:"ops_per_sec"`
	SpeedupVsSync float64 `json:"speedup_vs_sync"`
}

// runClusterBench measures cluster ingest across the transport matrix plus
// the pipeline window sweep and writes the machine-readable report to path.
// If requireSpeedup > 0 and the best pipelined window does not beat the
// synchronous path by that factor, an error is returned (the CI smoke gate).
func runClusterBench(path string, elements int, shardList, windowList string, seed uint64, requireSpeedup float64, failover, reshard, autopilot, slidingFailover, tracing, durability bool, windowSlots int64, replicas int, syncInterval time.Duration) error {
	report := &clusterBenchReport{
		GeneratedUnix:        time.Now().Unix(),
		Elements:             elements,
		SpeedupBinaryBatched: make(map[string]float64),
	}
	transports := []struct {
		codec wire.Codec
		batch int
	}{
		{wire.CodecJSON, 1},
		{wire.CodecBinary, 64},
	}
	maxShards := 1
	for _, field := range strings.Split(shardList, ",") {
		shards, err := strconv.Atoi(strings.TrimSpace(field))
		if err != nil || shards < 1 {
			return fmt.Errorf("ddsbench: bad -bench-shards entry %q", field)
		}
		if shards > maxShards {
			maxShards = shards
		}
		var opsPerSec [2]float64
		for i, tr := range transports {
			cfg := cluster.DefaultBenchConfig()
			cfg.Shards = shards
			cfg.Elements = elements
			cfg.Distinct = elements / 4
			cfg.Codec = tr.codec
			cfg.Batch = tr.batch
			if seed != 0 {
				cfg.Seed = seed
			}
			res, err := cluster.RunIngestBench(cfg)
			if err != nil {
				return err
			}
			report.Results = append(report.Results, res)
			opsPerSec[i] = res.OpsPerSec
			fmt.Fprintf(os.Stderr, "[cluster-bench shards=%d codec=%s batch=%d: %.0f ops/s, %.3f msgs/element]\n",
				shards, res.Codec, res.Batch, res.OpsPerSec, res.MsgsPerElement)
		}
		report.SpeedupBinaryBatched[fmt.Sprintf("shards=%d", shards)] = opsPerSec[1] / opsPerSec[0]
	}

	pipeline, err := runPipelineSweep(elements, maxShards, windowList, seed)
	if err != nil {
		return err
	}
	report.Pipeline = pipeline

	if failover {
		report.Failover, err = runFailoverBench(elements, maxShards, replicas, syncInterval, seed)
		if err != nil {
			return err
		}
	}

	if reshard {
		report.Reshard, err = runReshardBench(elements, maxShards, replicas, syncInterval, seed)
		if err != nil {
			return err
		}
	}

	if autopilot {
		report.Autopilot, err = runAutopilotBench(elements, maxShards, replicas, syncInterval, seed)
		if err != nil {
			return err
		}
	}

	if slidingFailover {
		report.SlidingFailover, err = runSlidingFailoverBench(elements, maxShards, windowSlots, replicas, syncInterval, seed)
		if err != nil {
			return err
		}
	}

	if tracing {
		report.Tracing, err = runTracingBench(elements, maxShards, seed)
		if err != nil {
			return err
		}
	}

	if durability {
		report.Durability, err = runDurabilityBench(elements, maxShards, replicas, syncInterval, seed)
		if err != nil {
			return err
		}
	}

	ms := dds.Metrics()
	report.Metrics = &ms
	fmt.Fprintf(os.Stderr, "[metrics snapshot: %d counters, %d gauges, %d histograms; frames encoded=%d, replica syncs=%d, failovers=%d]\n",
		len(ms.Counters), len(ms.Gauges), len(ms.Histograms),
		sumFamily(ms, "dds_wire_frames_encoded_total"),
		ms.Counter("dds_replica_sync_rounds_total"),
		ms.Counter("dds_cluster_failovers_total"))

	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d results; pipelined best %.2fx sync at batch %d window %d)\n",
		path, len(report.Results), pipeline.BestSpeedupVsSync, pipeline.BestBatch, pipeline.BestWindow)
	if requireSpeedup > 0 && pipeline.BestSpeedupVsSync < requireSpeedup {
		return fmt.Errorf("ddsbench: pipelined ingest best speedup %.2fx is below the required %.2fx",
			pipeline.BestSpeedupVsSync, requireSpeedup)
	}
	return nil
}

// runFailoverBench runs the kill/promote benchmark in both transport modes
// (synchronous batched and pipelined, flood mode so the wire is the
// bottleneck) at the sweep's largest shard count. Each run internally fails
// if the post-promotion merged sample diverges from the centralized
// reference, so a successful section is also a correctness proof.
func runFailoverBench(elements, shards, replicas int, syncInterval time.Duration, seed uint64) (*failoverReport, error) {
	rep := &failoverReport{
		Replicas:           replicas,
		SyncIntervalMS:     float64(syncInterval) / float64(time.Millisecond),
		WorstPostKillRatio: math.Inf(1),
	}
	for _, window := range []int{1, 8} {
		cfg := cluster.DefaultBenchConfig()
		cfg.Shards = shards
		cfg.Elements = elements
		cfg.Distinct = elements / 4
		cfg.Codec = wire.CodecBinary
		cfg.Batch = 64
		cfg.Flood = true
		if window > 1 {
			cfg.Window = window
		}
		if seed != 0 {
			cfg.Seed = seed
		}
		res, err := cluster.RunFailoverBench(cfg, replicas, syncInterval)
		if err != nil {
			return nil, err
		}
		rep.Runs = append(rep.Runs, res)
		ratio := res.PostKillOpsPerSec / res.PreKillOpsPerSec
		if ratio < rep.WorstPostKillRatio {
			rep.WorstPostKillRatio = ratio
		}
		fmt.Fprintf(os.Stderr, "[failover-bench shards=%d replicas=%d window=%d: %.0f -> %.0f ops/s across kill (%.2fx), %d promotions, %.1f ms stalled]\n",
			shards, replicas, window, res.PreKillOpsPerSec, res.PostKillOpsPerSec, ratio, res.Failovers, res.FailoverStallSec*1000)
	}
	return rep, nil
}

// runAutopilotBench runs the watcher-initiated split benchmark in both
// transport modes (synchronous batched and pipelined, flood mode so the
// per-shard offer counters see the stream's true skew) at the sweep's
// largest shard count. Each run arms the watcher against a Zipf-skewed
// stream and fails unless a hands-off split lands with the merged sample
// still byte-identical to the centralized reference.
func runAutopilotBench(elements, shards, replicas int, syncInterval time.Duration, seed uint64) (*autopilotReport, error) {
	rep := &autopilotReport{
		Replicas:         replicas,
		SyncIntervalMS:   float64(syncInterval) / float64(time.Millisecond),
		WorstDuringRatio: math.Inf(1),
	}
	for _, window := range []int{1, 8} {
		cfg := cluster.DefaultBenchConfig()
		cfg.Shards = shards
		cfg.Elements = elements
		cfg.Distinct = elements / 4
		cfg.Codec = wire.CodecBinary
		cfg.Batch = 64
		cfg.Flood = true
		if window > 1 {
			cfg.Window = window
		}
		if seed != 0 {
			cfg.Seed = seed
		}
		res, err := cluster.RunAutopilotBench(cfg, replicas, syncInterval)
		if err != nil {
			return nil, err
		}
		rep.Runs = append(rep.Runs, res)
		ratio := res.DuringOpsPerSec / res.BeforeOpsPerSec
		if ratio < rep.WorstDuringRatio {
			rep.WorstDuringRatio = ratio
		}
		if res.RebalanceLatencySec > rep.WorstRebalanceLatencySec {
			rep.WorstRebalanceLatencySec = res.RebalanceLatencySec
		}
		fmt.Fprintf(os.Stderr, "[autopilot-bench shards=%d replicas=%d window=%d: split in %.0f ms over %d rounds (hot %.2f, watermark %.2f), %.0f -> %.0f -> %.0f ops/s (%.2fx during), table v%d]\n",
			shards, replicas, window, res.RebalanceLatencySec*1000, res.Rounds, res.HotShare, res.HighWatermark,
			res.BeforeOpsPerSec, res.DuringOpsPerSec, res.AfterOpsPerSec, ratio, res.TableVersion)
	}
	return rep, nil
}

// runDurabilityBench runs the snapshot-spool benchmark in both transport
// modes (synchronous batched and pipelined, flood mode so background spooling
// competes with real wire pressure) at the sweep's largest shard count. Each
// run ingests the same stream with the spool off and on, measures the forced
// spool-barrier latency, halts the cluster as a power loss would, and times
// the cold restore — failing unless the restored merged sample matches the
// centralized reference exactly.
func runDurabilityBench(elements, shards, replicas int, syncInterval time.Duration, seed uint64) (*durabilityReport, error) {
	rep := &durabilityReport{
		Replicas:       replicas,
		SyncIntervalMS: float64(syncInterval) / float64(time.Millisecond),
	}
	for _, window := range []int{1, 8} {
		cfg := cluster.DefaultBenchConfig()
		cfg.Shards = shards
		cfg.Elements = elements
		cfg.Distinct = elements / 4
		cfg.Codec = wire.CodecBinary
		cfg.Batch = 64
		cfg.Flood = true
		if window > 1 {
			cfg.Window = window
		}
		if seed != 0 {
			cfg.Seed = seed
		}
		dir, err := os.MkdirTemp("", "ddsbench-durability-*")
		if err != nil {
			return nil, err
		}
		res, err := cluster.RunDurabilityBench(cfg, replicas, syncInterval, 25*time.Millisecond, dir)
		os.RemoveAll(dir)
		if err != nil {
			return nil, err
		}
		rep.Runs = append(rep.Runs, res)
		if res.OverheadPct > rep.WorstOverheadPct {
			rep.WorstOverheadPct = res.OverheadPct
		}
		if res.RestoreSec > rep.WorstRestoreSec {
			rep.WorstRestoreSec = res.RestoreSec
		}
		fmt.Fprintf(os.Stderr, "[durability-bench shards=%d replicas=%d window=%d: %.0f ops/s off, %.0f ops/s spooled (%.1f%% overhead), %d snapshots / %d bytes, barrier %.2f ms, restore %.1f ms for %d slots]\n",
			shards, replicas, window, res.OffOpsPerSec, res.OnOpsPerSec, res.OverheadPct,
			res.Snapshots, res.SnapshotBytes, res.SpoolBarrierSec*1000, res.RestoreSec*1000, res.RestoredSlots)
	}
	return rep, nil
}

// runSlidingFailoverBench runs the sliding-window kill/promote benchmark in
// both transport modes at the sweep's largest shard count. Each run
// internally fails if the post-promotion merged window sample diverges from
// the brute-force window minimum, so a successful section is also the
// correctness proof that sliding-window replication (generic state frames)
// survives a primary death.
func runSlidingFailoverBench(elements, shards int, windowSlots int64, replicas int, syncInterval time.Duration, seed uint64) (*slidingFailoverReport, error) {
	rep := &slidingFailoverReport{
		Replicas:           replicas,
		WindowSlots:        windowSlots,
		SyncIntervalMS:     float64(syncInterval) / float64(time.Millisecond),
		WorstPostKillRatio: math.Inf(1),
	}
	for _, window := range []int{1, 8} {
		cfg := cluster.DefaultBenchConfig()
		cfg.Shards = shards
		cfg.Elements = elements
		cfg.Distinct = elements / 4
		cfg.Codec = wire.CodecBinary
		cfg.Batch = 64
		if window > 1 {
			cfg.Window = window
		}
		if seed != 0 {
			cfg.Seed = seed
		}
		res, err := cluster.RunSlidingFailoverBench(cfg, windowSlots, replicas, syncInterval)
		if err != nil {
			return nil, err
		}
		rep.Runs = append(rep.Runs, res)
		ratio := res.PostKillOpsPerSec / res.PreKillOpsPerSec
		if ratio < rep.WorstPostKillRatio {
			rep.WorstPostKillRatio = ratio
		}
		fmt.Fprintf(os.Stderr, "[sliding-failover-bench shards=%d replicas=%d w=%d window=%d: %.0f -> %.0f ops/s across kill (%.2fx), %d promotions, %.1f ms stalled]\n",
			shards, replicas, windowSlots, window, res.PreKillOpsPerSec, res.PostKillOpsPerSec, ratio, res.Failovers, res.FailoverStallSec*1000)
	}
	return rep, nil
}

// runReshardBench runs the online split+merge benchmark in both transport
// modes (synchronous batched and pipelined, flood mode so the wire is the
// bottleneck) at the sweep's largest shard count. Each run splits a shard
// live under mid-ingest load, measures throughput before/during/after plus
// the cutover stall, merges the ranges back, and internally fails if the
// final merged sample diverges from the centralized reference — so a
// successful section is also a correctness proof.
func runReshardBench(elements, shards, replicas int, syncInterval time.Duration, seed uint64) (*reshardReport, error) {
	rep := &reshardReport{
		Replicas:         replicas,
		SyncIntervalMS:   float64(syncInterval) / float64(time.Millisecond),
		WorstDuringRatio: math.Inf(1),
	}
	for _, window := range []int{1, 8} {
		cfg := cluster.DefaultBenchConfig()
		cfg.Shards = shards
		cfg.Elements = elements
		cfg.Distinct = elements / 4
		cfg.Codec = wire.CodecBinary
		cfg.Batch = 64
		cfg.Flood = true
		if window > 1 {
			cfg.Window = window
		}
		if seed != 0 {
			cfg.Seed = seed
		}
		res, err := cluster.RunReshardBench(cfg, replicas, syncInterval)
		if err != nil {
			return nil, err
		}
		rep.Runs = append(rep.Runs, res)
		ratio := res.DuringOpsPerSec / res.BeforeOpsPerSec
		if ratio < rep.WorstDuringRatio {
			rep.WorstDuringRatio = ratio
		}
		fmt.Fprintf(os.Stderr, "[reshard-bench shards=%d replicas=%d window=%d: %.0f -> %.0f -> %.0f ops/s across split (%.2fx during), cutover stall %.1f ms, %d+%d entries moved]\n",
			shards, replicas, window, res.BeforeOpsPerSec, res.DuringOpsPerSec, res.AfterOpsPerSec, ratio,
			res.SplitCutoverStallSec*1000, res.WarmEntries, res.SettleEntries)
	}
	return rep, nil
}

// runTracingBench measures the cost of trace sampling on the ingest hot
// path: the same flood-mode pipelined configuration (binary, batch 64,
// window 8) run with tracing off, at the 1% production rate, and at 100%.
// The rate is process-wide, so it is restored to 0 before returning no
// matter how the runs end.
func runTracingBench(elements, shards int, seed uint64) (*tracingReport, error) {
	rep := &tracingReport{Shards: shards}
	defer obs.SetTraceSampleRate(0)
	baseline := 0.0
	for _, rate := range []float64{0, 0.01, 1.0} {
		cfg := cluster.DefaultBenchConfig()
		cfg.Shards = shards
		cfg.Elements = elements
		cfg.Distinct = elements / 4
		cfg.Codec = wire.CodecBinary
		cfg.Batch = 64
		cfg.Window = 8
		cfg.Flood = true
		if seed != 0 {
			cfg.Seed = seed
		}
		obs.SetTraceSampleRate(rate)
		res, err := cluster.RunIngestBench(cfg)
		if err != nil {
			return nil, err
		}
		if baseline == 0 {
			baseline = res.OpsPerSec
		}
		point := tracingPoint{SampleRate: rate, OpsPerSec: res.OpsPerSec, RelativeToOff: res.OpsPerSec / baseline}
		rep.Runs = append(rep.Runs, point)
		fmt.Fprintf(os.Stderr, "[tracing-bench shards=%d flood batch=64 window=8 sample=%g: %.0f ops/s (%.2fx of untraced)]\n",
			shards, rate, point.OpsPerSec, point.RelativeToOff)
	}
	rep.SpansRecorded = len(obs.Traces().Spans())
	return rep, nil
}

// sumFamily totals every counter whose name starts with the given family
// name (labels are baked into instrument names, so a labeled family is many
// counters).
func sumFamily(ms dds.MetricsSnapshot, family string) uint64 {
	var total uint64
	for _, c := range ms.Counters {
		if strings.HasPrefix(c.Name, family) {
			total += c.Value
		}
	}
	return total
}

// runPipelineSweep measures flood-mode batched-binary ingest across the
// given window sizes at the given shard count, at batch sizes 16 and 64.
func runPipelineSweep(elements, shards int, windowList string, seed uint64) (*pipelineReport, error) {
	rep := &pipelineReport{Shards: shards}
	for _, batch := range []int{16, 64} {
		sweep := pipelineSweep{Batch: batch}
		syncOps := 0.0
		for _, field := range strings.Split(windowList, ",") {
			window, err := strconv.Atoi(strings.TrimSpace(field))
			if err != nil || window < 1 {
				return nil, fmt.Errorf("ddsbench: bad -bench-windows entry %q", field)
			}
			cfg := cluster.DefaultBenchConfig()
			cfg.Shards = shards
			cfg.Elements = elements
			cfg.Distinct = elements / 4
			cfg.Codec = wire.CodecBinary
			cfg.Batch = batch
			cfg.Flood = true
			if window > 1 {
				cfg.Window = window
			}
			if seed != 0 {
				cfg.Seed = seed
			}
			res, err := cluster.RunIngestBench(cfg)
			if err != nil {
				return nil, err
			}
			if syncOps == 0 {
				if window != 1 {
					return nil, fmt.Errorf("ddsbench: -bench-windows must start with 1 (the synchronous baseline), got %d", window)
				}
				syncOps = res.OpsPerSec
			}
			point := pipelinePoint{Window: window, OpsPerSec: res.OpsPerSec, SpeedupVsSync: res.OpsPerSec / syncOps}
			sweep.Windows = append(sweep.Windows, point)
			// Only pipelined points count toward the best speedup: the
			// window-1 baseline is 1.0x by construction, and letting it in
			// would make the -require-pipeline-speedup gate vacuous at 1.0.
			if window > 1 && point.SpeedupVsSync > rep.BestSpeedupVsSync {
				rep.BestSpeedupVsSync = point.SpeedupVsSync
				rep.BestBatch = batch
				rep.BestWindow = window
			}
			fmt.Fprintf(os.Stderr, "[pipeline-sweep shards=%d flood batch=%d window=%d: %.0f ops/s (%.2fx sync)]\n",
				shards, batch, window, point.OpsPerSec, point.SpeedupVsSync)
		}
		rep.Sweeps = append(rep.Sweeps, sweep)
	}
	return rep, nil
}
