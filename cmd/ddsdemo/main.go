// Command ddsdemo runs a small end-to-end demonstration of the distributed
// distinct sampler and prints the protocol's observable behaviour: how the
// sample and the threshold evolve, how many messages are exchanged, and how
// the final sample compares to the centralized oracle.
//
// Usage:
//
//	ddsdemo                      # infinite window demo
//	ddsdemo -mode sliding -window 200
//	ddsdemo -sites 20 -sample 10 -elements 50000 -distinct 8000
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/distribute"
	"repro/internal/hashing"
	"repro/internal/sliding"
	"repro/internal/stream"
)

func main() {
	var (
		mode     = flag.String("mode", "infinite", "infinite or sliding")
		sites    = flag.Int("sites", 5, "number of sites k")
		sample   = flag.Int("sample", 10, "sample size s (infinite window)")
		window   = flag.Int64("window", 100, "window size in slots (sliding mode)")
		elements = flag.Int("elements", 20000, "stream length")
		distinct = flag.Int("distinct", 4000, "target distinct elements")
		seed     = flag.Uint64("seed", 7, "seed")
	)
	flag.Parse()

	data := dataset.Uniform(*elements, *distinct, *seed).Generate()
	hasher := hashing.NewMurmur2(*seed * 1000003)
	policy := distribute.NewRandom(*sites, *seed)

	switch *mode {
	case "infinite":
		runInfinite(data, hasher, policy, *sites, *sample)
	case "sliding":
		runSliding(data, hasher, policy, *sites, *window)
	default:
		fmt.Fprintf(os.Stderr, "unknown mode %q\n", *mode)
		os.Exit(2)
	}
}

func runInfinite(data []stream.Element, hasher *hashing.Hasher, policy distribute.Policy, k, s int) {
	st := stream.Summarize(data)
	fmt.Printf("infinite window: k=%d sites, sample size s=%d, %d elements (%d distinct)\n",
		k, s, st.Elements, st.Distinct)

	sys := core.NewSystem(k, s, hasher)
	arrivals := distribute.Apply(data, policy)
	metrics, err := sys.Runner(len(arrivals)/10, 0).RunSequential(arrivals)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	fmt.Println("\ncumulative messages while the stream is observed:")
	for _, p := range metrics.Timeline {
		fmt.Printf("  after %7d arrivals: %6d messages\n", p.Arrivals, p.Messages)
	}

	coord := sys.Coordinator.(*core.InfiniteCoordinator)
	fmt.Printf("\nfinal threshold u = %.6f\n", coord.Threshold())
	fmt.Printf("final sample (%d elements):\n", len(metrics.FinalSample))
	for _, e := range metrics.FinalSample {
		fmt.Printf("  %-40s h=%.6f\n", e.Key, e.Hash)
	}

	ref := core.NewReference(s, hasher)
	ref.ObserveAll(stream.Keys(data))
	fmt.Printf("\nmatches centralized oracle: %v\n", ref.SameSample(metrics.FinalSample))
	fmt.Printf("total messages: %d (up %d, down %d)\n",
		metrics.TotalMessages(), metrics.UpMessages, metrics.DownMessages)
}

func runSliding(data []stream.Element, hasher *hashing.Hasher, policy distribute.Policy, k int, window int64) {
	reslotted := stream.Reslot(data, 5)
	st := stream.Summarize(reslotted)
	fmt.Printf("sliding window: k=%d sites, window w=%d slots, %d elements over %d slots\n",
		k, window, st.Elements, st.MaxSlot)

	sys := sliding.NewSystem(k, window, hasher, 11)
	arrivals := distribute.Apply(reslotted, policy)
	metrics, err := sys.Runner(0, st.MaxSlot/10).RunSequential(arrivals)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	fmt.Println("\nper-site memory over time:")
	for _, p := range metrics.Memory {
		fmt.Printf("  slot %7d: mean %.2f tuples, max %d tuples\n", p.Slot, p.MeanPerSite, p.MaxPerSite)
	}
	if len(metrics.FinalSample) == 1 {
		e := metrics.FinalSample[0]
		fmt.Printf("\nfinal window sample: %s (h=%.6f, expires at slot %d)\n", e.Key, e.Hash, e.Expiry)
	}
	fmt.Printf("total messages: %d\n", metrics.TotalMessages())
}
