package dds_test

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/dds"
	"repro/internal/core"
	"repro/internal/hashing"
)

// TestPublicAPIInfiniteLifecycle drives the whole public surface end to end
// in whole-stream mode: serve a replicated cluster, ingest through a
// pipelined client, kill a primary mid-ingest, split a shard live, merge it
// back, and require the queried sample to match the centralized reference
// through all of it. Snapshot and Estimate are exercised along the way.
func TestPublicAPIInfiniteLifecycle(t *testing.T) {
	const (
		sampleSize = 16
		seed       = 20130501
	)
	ctx := context.Background()
	cl, err := dds.Serve(ctx, dds.Config{Listen: "127.0.0.1:0", Shards: 2, SampleSize: sampleSize, Seed: seed},
		dds.WithReplicas(1), dds.WithSyncInterval(20*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	client, err := dds.Open(ctx, dds.Config{Coordinators: cl.Groups(), SampleSize: sampleSize, Seed: seed},
		dds.WithBatch(8), dds.WithPipelining(4))
	if err != nil {
		t.Fatal(err)
	}
	cl.Attach(client)

	oracle := core.NewReference(sampleSize, hashing.NewMurmur2(seed))
	offer := func(from, to int) {
		t.Helper()
		for i := from; i < to; i++ {
			key := fmt.Sprintf("key-%d", i)
			oracle.Observe(key)
			if err := client.Offer(key, 0); err != nil {
				t.Fatal(err)
			}
		}
		if err := client.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	checkExact := func(label string) {
		t.Helper()
		sample, err := client.Query(ctx)
		if err != nil {
			t.Fatalf("%s: %v", label, err)
		}
		want := oracle.SampleKeys()
		got := sample.Keys()
		if len(got) != len(want) {
			t.Fatalf("%s: sample has %d keys, want %d", label, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%s: sample[%d] = %q, want %q", label, i, got[i], want[i])
			}
		}
	}

	offer(0, 1200)
	checkExact("after initial ingest")

	est, err := client.Estimate(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if est.Count < 300 || est.Count > 5000 {
		t.Fatalf("estimate %+v implausible for 1200 distinct keys", est)
	}

	states, err := client.Snapshot(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(states) != 2 {
		t.Fatalf("snapshot returned %d shard states, want 2", len(states))
	}
	for _, st := range states {
		decoded, err := core.DecodeState(st.Data)
		if err != nil {
			t.Fatalf("shard %d snapshot does not decode: %v", st.Slot, err)
		}
		if decoded.Kind != core.StateInfinite || decoded.SampleSize != sampleSize {
			t.Fatalf("shard %d snapshot envelope %v/%d, want infinite/%d", st.Slot, decoded.Kind, decoded.SampleSize, sampleSize)
		}
	}

	// Failover: quiesce, kill shard 0's primary, keep ingesting.
	if err := cl.SyncNow(); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.KillPrimary(0); err != nil {
		t.Fatal(err)
	}
	offer(1200, 2400)
	checkExact("after failover")

	// Live reshard: split shard 1, ingest, merge it back.
	rep := runPlan(t, client, func() (*dds.ReshardReport, error) { return cl.Split(1, 0.5) })
	if rep.Op != "split" {
		t.Fatalf("split report %+v", rep)
	}
	offer(2400, 3000)
	checkExact("after split")
	if idx := cl.RangeIndexOf(1); idx < 0 {
		t.Fatal("slot 1 owns no range after split")
	} else {
		runPlan(t, client, func() (*dds.ReshardReport, error) { return cl.MergeAt(idx) })
	}
	checkExact("after merge")

	if err := client.Close(); err != nil {
		t.Fatal(err)
	}
}

// runPlan executes a reshard plan while pumping the (otherwise idle) client
// from its owning goroutine — cutovers are cooperative.
func runPlan(t *testing.T, client *dds.Client, plan func() (*dds.ReshardReport, error)) *dds.ReshardReport {
	t.Helper()
	type result struct {
		rep *dds.ReshardReport
		err error
	}
	done := make(chan result, 1)
	go func() {
		rep, err := plan()
		done <- result{rep, err}
	}()
	for {
		select {
		case r := <-done:
			if r.err != nil {
				t.Fatal(r.err)
			}
			return r.rep
		default:
			if err := client.Flush(); err != nil {
				t.Fatal(err)
			}
			time.Sleep(200 * time.Microsecond)
		}
	}
}

// TestPublicAPISlidingWindow drives the sliding-window mode through the
// public surface: slotted ingest with EndSlot, a replicated cluster, a
// mid-ingest primary kill, and window queries that must match the
// brute-force window minimum. This is the sliding replication the unified
// Snapshot/Restore API added — before it, WithWindow plus WithReplicas was
// impossible.
func TestPublicAPISlidingWindow(t *testing.T) {
	const (
		window = 12
		seed   = 4242
	)
	ctx := context.Background()
	cl, err := dds.Serve(ctx, dds.Config{Listen: "127.0.0.1:0", Shards: 2, Seed: seed},
		dds.WithWindow(window), dds.WithReplicas(1), dds.WithSyncInterval(15*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	client, err := dds.Open(ctx, dds.Config{Coordinators: cl.Groups(), Seed: seed},
		dds.WithWindow(window), dds.WithBatch(4))
	if err != nil {
		t.Fatal(err)
	}

	hasher := hashing.NewMurmur2(seed)
	lastArrival := map[string]int64{}
	keyAt := func(slot int64, j int) string { return fmt.Sprintf("s%d-j%d", slot%17, j) }
	ingest := func(from, to int64) {
		t.Helper()
		for slot := from; slot <= to; slot++ {
			for j := 0; j < 6; j++ {
				key := keyAt(slot, j)
				lastArrival[key] = slot
				if err := client.Offer(key, slot); err != nil {
					t.Fatal(err)
				}
			}
			if err := client.EndSlot(slot); err != nil {
				t.Fatal(err)
			}
		}
	}
	checkWindow := func(now int64, label string) {
		t.Helper()
		bestKey, bestHash := "", 2.0
		for key, last := range lastArrival {
			if last <= now-window {
				continue
			}
			if h := hasher.Unit(key); h < bestHash {
				bestKey, bestHash = key, h
			}
		}
		sample, err := client.Query(ctx)
		if err != nil {
			t.Fatalf("%s: %v", label, err)
		}
		if len(sample) != 1 || sample[0].Key != bestKey {
			t.Fatalf("%s: window sample %+v, want %q", label, sample, bestKey)
		}
	}

	ingest(0, 40)
	checkWindow(40, "after initial ingest")

	if err := cl.SyncNow(); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.KillPrimary(0); err != nil {
		t.Fatal(err)
	}
	ingest(41, 80)
	checkWindow(80, "after failover")

	// Estimation is whole-stream only; the window client gets a typed error.
	if _, err := client.Estimate(ctx); err == nil {
		t.Fatal("Estimate succeeded in sliding-window mode")
	}

	// Snapshots carry the sliding state (kind, slot clock, store).
	states, err := client.Snapshot(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for _, st := range states {
		decoded, err := core.DecodeState(st.Data)
		if err != nil {
			t.Fatalf("shard %d snapshot does not decode: %v", st.Slot, err)
		}
		if decoded.Kind != core.StateSliding {
			t.Fatalf("shard %d snapshot kind %v, want sliding", st.Slot, decoded.Kind)
		}
	}
	if err := client.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestOpenValidationAndContext pins Open's config validation and context
// handling.
func TestOpenValidationAndContext(t *testing.T) {
	ctx := context.Background()
	if _, err := dds.Open(ctx, dds.Config{}); err == nil {
		t.Fatal("Open with no coordinators succeeded")
	}
	if _, err := dds.Open(ctx, dds.Config{Coordinators: [][]string{{"127.0.0.1:1"}}}, dds.WithPipelining(1)); err == nil {
		t.Fatal("Open with pipelining depth 1 succeeded")
	}
	if _, err := dds.Open(ctx, dds.Config{Coordinators: [][]string{{"127.0.0.1:1"}}}, dds.WithReplicas(-1)); err == nil {
		t.Fatal("Open with negative replicas succeeded")
	}
	if _, err := dds.Open(ctx, dds.Config{Coordinators: [][]string{{"127.0.0.1:1"}}}, dds.WithRetry(3, -time.Millisecond)); err == nil {
		t.Fatal("Open with negative retry base succeeded")
	}
	if _, err := dds.Open(ctx, dds.Config{Coordinators: [][]string{{"127.0.0.1:1"}}}, dds.WithTraceSampling(1.5)); err == nil {
		t.Fatal("Open with trace sample rate above 1 succeeded")
	}
	if _, err := dds.Open(ctx, dds.Config{Coordinators: [][]string{{"127.0.0.1:1"}}}, dds.WithTraceSampling(-0.1)); err == nil {
		t.Fatal("Open with negative trace sample rate succeeded")
	}
	cancelled, cancel := context.WithCancel(ctx)
	cancel()
	if _, err := dds.Open(cancelled, dds.Config{Coordinators: [][]string{{"127.0.0.1:1"}}}); !errors.Is(err, context.Canceled) {
		t.Fatalf("Open with cancelled context returned %v, want context.Canceled", err)
	}
}

// TestPublicAPILeaseFencing pins the lease options through the public
// surface: the contradictory configurations fail at Serve, and a leased,
// replicated cluster with a retrying client survives a primary kill with the
// sample still exact — the happy path where quorum renewals keep every lease
// alive and the client's retry policy only ever arms.
func TestPublicAPILeaseFencing(t *testing.T) {
	const (
		sampleSize = 16
		seed       = 20130501
	)
	ctx := context.Background()
	if _, err := dds.Serve(ctx, dds.Config{Listen: "127.0.0.1:0"},
		dds.WithReplicas(1), dds.WithLease(50*time.Millisecond)); err == nil {
		t.Fatal("Serve with lease not exceeding the sync interval succeeded")
	}
	if _, err := dds.Serve(ctx, dds.Config{Listen: "127.0.0.1:0"},
		dds.WithLease(200*time.Millisecond)); err == nil {
		t.Fatal("Serve with a lease but no replicas succeeded")
	}
	if _, err := dds.Serve(ctx, dds.Config{Listen: "127.0.0.1:0"},
		dds.WithLease(-time.Second)); err == nil {
		t.Fatal("Serve with a negative lease succeeded")
	}

	cl, err := dds.Serve(ctx, dds.Config{Listen: "127.0.0.1:0", Shards: 2, SampleSize: sampleSize, Seed: seed},
		dds.WithReplicas(1), dds.WithSyncInterval(15*time.Millisecond), dds.WithLease(90*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	client, err := dds.Open(ctx, dds.Config{Coordinators: cl.Groups(), SampleSize: sampleSize, Seed: seed},
		dds.WithBatch(8), dds.WithRetry(8, time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}

	oracle := core.NewReference(sampleSize, hashing.NewMurmur2(seed))
	offer := func(from, to int) {
		t.Helper()
		for i := from; i < to; i++ {
			key := fmt.Sprintf("lease-%d", i)
			oracle.Observe(key)
			if err := client.Offer(key, 0); err != nil {
				t.Fatal(err)
			}
		}
		if err := client.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	checkExact := func(label string) {
		t.Helper()
		sample, err := client.Query(ctx)
		if err != nil {
			t.Fatalf("%s: %v", label, err)
		}
		want := oracle.SampleKeys()
		got := sample.Keys()
		if len(got) != len(want) {
			t.Fatalf("%s: sample has %d keys, want %d", label, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%s: sample[%d] = %q, want %q", label, i, got[i], want[i])
			}
		}
	}

	offer(0, 800)
	checkExact("after leased ingest")

	// A quiesced kill: the promoted replica re-arms its lease from the next
	// quorum round, and the client's failover replay keeps the sample exact.
	if err := cl.SyncNow(); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.KillPrimary(0); err != nil {
		t.Fatal(err)
	}
	offer(800, 1600)
	checkExact("after failover under lease")

	if err := client.Close(); err != nil {
		t.Fatal(err)
	}
}
