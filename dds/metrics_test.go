package dds_test

import (
	"context"
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/dds"
	"repro/internal/core"
	"repro/internal/sliding"
	"repro/internal/wire"
)

// TestClientStatsViaAdmin exercises the stats admin verb end to end: serve a
// cluster with an admin listener, ingest through a client opened against it,
// and require Client.Stats to report the ingest totals plus a metrics
// snapshot whose wire and shard instruments have moved.
func TestClientStatsViaAdmin(t *testing.T) {
	ctx := context.Background()
	cl, err := dds.Serve(ctx, dds.Config{Listen: "127.0.0.1:0", Shards: 2, SampleSize: 16},
		dds.WithAdmin("127.0.0.1:0"))
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	client, err := dds.Open(ctx, dds.Config{SampleSize: 16}, dds.WithAdmin(cl.AdminAddr()), dds.WithBatch(8))
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	for i := 0; i < 400; i++ {
		if err := client.Offer(fmt.Sprintf("stats-key-%d", i), 0); err != nil {
			t.Fatal(err)
		}
	}
	if err := client.Flush(); err != nil {
		t.Fatal(err)
	}

	stats, err := client.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Offers == 0 {
		t.Fatal("Stats reports zero offers after ingest")
	}
	var encoded uint64
	for _, c := range stats.Metrics.Counters {
		if strings.HasPrefix(c.Name, "dds_wire_frames_encoded_total") {
			encoded += c.Value
		}
	}
	if encoded == 0 {
		t.Fatal("metrics snapshot has no encoded-frame counts")
	}
	if stats.Metrics.Counter(`dds_shard_offers_total{slot="0"}`)+stats.Metrics.Counter(`dds_shard_offers_total{slot="1"}`) == 0 {
		t.Fatal("metrics snapshot has no per-shard offer counts")
	}
	if stats.Watcher != nil {
		t.Fatal("Stats reports watcher counters on a cluster without WithAutoReshard")
	}

	// Stats without an admin listener is a configuration error, not a panic.
	bare, err := dds.Open(ctx, dds.Config{Coordinators: cl.Groups(), SampleSize: 16})
	if err != nil {
		t.Fatal(err)
	}
	defer bare.Close()
	if _, err := bare.Stats(ctx); err == nil {
		t.Fatal("Stats without WithAdmin should fail")
	}
}

// TestAutoReshardOptionAndStats pins the WithAutoReshard surface: the
// contradictory and out-of-range configurations fail at Serve, and an armed
// cluster reports the watcher's decision counters through the stats admin
// verb (non-nil even before the watcher has acted).
func TestAutoReshardOptionAndStats(t *testing.T) {
	ctx := context.Background()
	base := dds.Config{Listen: "127.0.0.1:0", SampleSize: 16}
	if _, err := dds.Serve(ctx, base, dds.WithWatchInterval(time.Second)); err == nil {
		t.Fatal("Serve with watcher tuning but no WithAutoReshard succeeded")
	}
	if _, err := dds.Serve(ctx, base, dds.WithAutoReshard(1.5, 0.1, time.Minute)); err == nil {
		t.Fatal("Serve with a high watermark above 1 succeeded")
	}
	if _, err := dds.Serve(ctx, base, dds.WithAutoReshard(0.3, 0.6, time.Minute)); err == nil {
		t.Fatal("Serve with low watermark above high succeeded")
	}
	if _, err := dds.Serve(ctx, base, dds.WithAutoReshard(0.65, 0.15, -time.Minute)); err == nil {
		t.Fatal("Serve with a negative cooldown succeeded")
	}

	cl, err := dds.Serve(ctx, dds.Config{Listen: "127.0.0.1:0", Shards: 2, SampleSize: 16},
		dds.WithAdmin("127.0.0.1:0"),
		dds.WithAutoReshard(0, 0, time.Minute), // watermarks default to 0.65 / 0.15
		dds.WithWatchInterval(time.Hour))       // idle for the test's lifetime
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if ws := cl.WatcherStats(); ws == nil {
		t.Fatal("WatcherStats is nil on a cluster armed WithAutoReshard")
	}
	status, err := dds.AdminStats(ctx, cl.AdminAddr())
	if err != nil {
		t.Fatal(err)
	}
	if status.Watcher == nil {
		t.Fatal("stats admin verb omitted watcher counters on an armed cluster")
	}
}

// TestSnapshotMultiCoordinator asserts the fix for the carried-forward
// multi-copy gap: Client.Snapshot against a per-copy sliding-window
// coordinator now succeeds — the MultiCoordinator gained real
// Snapshot/Restore via the section-level slot clock — and the captured blob
// is the full multi-copy state: sliding kind, one section per copy. (This
// test previously pinned the gap by asserting dds.ErrNotSnapshottable.)
func TestSnapshotMultiCoordinator(t *testing.T) {
	const copies = 4
	srv := wire.NewCoordinatorServer(sliding.NewMultiCoordinator(copies))
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	ctx := context.Background()
	client, err := dds.Open(ctx, dds.Config{Coordinators: [][]string{{addr}}, SampleSize: copies})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	states, err := client.Snapshot(ctx)
	if err != nil {
		t.Fatalf("Snapshot of a multi-copy sliding coordinator failed: %v", err)
	}
	if len(states) != 1 {
		t.Fatalf("got %d shard states, want 1", len(states))
	}
	st, err := core.DecodeState(states[0].Data)
	if err != nil {
		t.Fatal(err)
	}
	if st.Kind != core.StateSliding || st.SampleSize != copies || len(st.Sections) != copies {
		t.Fatalf("snapshot = kind %v s=%d sections=%d, want sliding s=%d sections=%d",
			st.Kind, st.SampleSize, len(st.Sections), copies, copies)
	}
	// And the blob restores into a fresh multi-coordinator.
	if err := sliding.NewMultiCoordinator(copies).Restore(st); err != nil {
		t.Fatalf("restore of the captured snapshot failed: %v", err)
	}
}
