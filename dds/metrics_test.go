package dds_test

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"

	"repro/dds"
	"repro/internal/sliding"
	"repro/internal/wire"
)

// TestClientStatsViaAdmin exercises the stats admin verb end to end: serve a
// cluster with an admin listener, ingest through a client opened against it,
// and require Client.Stats to report the ingest totals plus a metrics
// snapshot whose wire and shard instruments have moved.
func TestClientStatsViaAdmin(t *testing.T) {
	ctx := context.Background()
	cl, err := dds.Serve(ctx, dds.Config{Listen: "127.0.0.1:0", Shards: 2, SampleSize: 16},
		dds.WithAdmin("127.0.0.1:0"))
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	client, err := dds.Open(ctx, dds.Config{SampleSize: 16}, dds.WithAdmin(cl.AdminAddr()), dds.WithBatch(8))
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	for i := 0; i < 400; i++ {
		if err := client.Offer(fmt.Sprintf("stats-key-%d", i), 0); err != nil {
			t.Fatal(err)
		}
	}
	if err := client.Flush(); err != nil {
		t.Fatal(err)
	}

	stats, err := client.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Offers == 0 {
		t.Fatal("Stats reports zero offers after ingest")
	}
	var encoded uint64
	for _, c := range stats.Metrics.Counters {
		if strings.HasPrefix(c.Name, "dds_wire_frames_encoded_total") {
			encoded += c.Value
		}
	}
	if encoded == 0 {
		t.Fatal("metrics snapshot has no encoded-frame counts")
	}
	if stats.Metrics.Counter(`dds_shard_offers_total{slot="0"}`)+stats.Metrics.Counter(`dds_shard_offers_total{slot="1"}`) == 0 {
		t.Fatal("metrics snapshot has no per-shard offer counts")
	}

	// Stats without an admin listener is a configuration error, not a panic.
	bare, err := dds.Open(ctx, dds.Config{Coordinators: cl.Groups(), SampleSize: 16})
	if err != nil {
		t.Fatal(err)
	}
	defer bare.Close()
	if _, err := bare.Stats(ctx); err == nil {
		t.Fatal("Stats without WithAdmin should fail")
	}
}

// TestSnapshotNotSnapshottableTyped pins the typed sentinel on the backup
// path: Client.Snapshot against a coordinator that predates the
// Snapshot/Restore API (the per-copy sliding-window coordinator) fails with
// an error wrapping dds.ErrNotSnapshottable.
func TestSnapshotNotSnapshottableTyped(t *testing.T) {
	srv := wire.NewCoordinatorServer(sliding.NewMultiCoordinator(4))
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	ctx := context.Background()
	client, err := dds.Open(ctx, dds.Config{Coordinators: [][]string{{addr}}, SampleSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	_, err = client.Snapshot(ctx)
	if err == nil {
		t.Fatal("Snapshot of a non-snapshottable coordinator succeeded")
	}
	if !errors.Is(err, dds.ErrNotSnapshottable) {
		t.Fatalf("err = %v, want errors.Is(err, dds.ErrNotSnapshottable)", err)
	}
}
