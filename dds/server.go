package dds

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"strings"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/durable"
	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/replica"
	"repro/internal/sliding"
)

// Cluster is an embeddable sampler cluster: Shards replica groups (one
// primary plus WithReplicas warm replicas each), a reshard driver for live
// splits and merges, and an optional admin listener. Serve starts one; tests,
// examples, and cmd/ddsnode all run on it.
type Cluster struct {
	cfg     Config
	router  *cluster.ShardRouter
	srv     *replica.Server
	rs      *cluster.Resharder
	admin   net.Listener
	watcher *cluster.Watcher
	spool   *durable.Spool // nil without WithDataDir
}

// Serve starts a cluster per cfg (Listen, Shards, SampleSize, Seed, plus the
// WithWindow/WithReplicas/WithSyncInterval/WithLease/WithCodec/WithAdmin
// options) and
// returns it running. The context bounds startup only; the cluster serves
// until Close.
func Serve(ctx context.Context, cfg Config, opts ...Option) (*Cluster, error) {
	cfg, err := cfg.normalize(opts)
	if err != nil {
		return nil, err
	}
	if cfg.Listen == "" {
		cfg.Listen = "127.0.0.1:0"
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if cfg.traceSampleSet {
		obs.SetTraceSampleRate(cfg.traceSample)
	}
	newCoord := func(shard, member int) netsim.CoordinatorNode {
		if cfg.window > 0 {
			return sliding.NewCoordinator()
		}
		return core.NewInfiniteCoordinator(cfg.SampleSize)
	}
	var (
		router *cluster.ShardRouter
		srv    *replica.Server
		spool  *durable.Spool
	)
	if cfg.dataDir != "" {
		var err error
		router, srv, spool, err = serveDurable(cfg, newCoord)
		if err != nil {
			return nil, err
		}
	} else {
		router = cluster.NewShardRouter(cfg.Shards, cfg.hasher())
		var err error
		srv, err = replica.Listen(cfg.Listen, cfg.Shards, replica.Options{
			Replicas:     cfg.replicas,
			SyncInterval: cfg.syncInterval,
			Lease:        cfg.lease,
			Codec:        cfg.wireCodec(),
			RouteHash:    router.RouteHash,
		}, newCoord)
		if err != nil {
			return nil, fmt.Errorf("dds: serve: %w", err)
		}
	}
	cl := &Cluster{
		cfg:    cfg,
		router: router,
		srv:    srv,
		rs:     cluster.NewResharder(srv, router.Table(), cfg.wireCodec()),
		spool:  spool,
	}
	if spool != nil {
		// Reshard durability barrier: every completed plan rewrites the
		// manifest to the new table and force-spools the live shards.
		cl.rs.SetSpool(spool, durable.Manifest{
			SampleSize: cfg.SampleSize, Window: cfg.window, Seed: cfg.Seed,
		})
	}
	if cfg.admin != "" {
		if _, err := cl.ServeAdmin(cfg.admin); err != nil {
			_ = srv.Close()
			return nil, err
		}
	}
	if cfg.autoReshard {
		cl.watcher = cluster.NewWatcher(cl.rs, cluster.WatcherConfig{
			Interval:      cfg.watchInterval,
			HighWatermark: cfg.watchHigh,
			LowWatermark:  cfg.watchLow,
			Cooldown:      cfg.watchCooldown,
			ChurnWeight:   cfg.churnWeight,
		})
		cl.watcher.Start()
	}
	return cl, nil
}

// serveDurable is Serve's WithDataDir path: open the spool, adopt the
// persisted route table (uniform over cfg.Shards for a fresh dir), restore
// every routed shard's newest valid snapshot into the starting groups, and
// arm background spooling.
func serveDurable(cfg Config, newCoord func(shard, member int) netsim.CoordinatorNode) (*cluster.ShardRouter, *replica.Server, *durable.Spool, error) {
	sp, err := durable.Open(cfg.dataDir, cfg.snapRetain)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("dds: serve: %w", err)
	}
	m, err := sp.ReadManifest()
	if err != nil {
		return nil, nil, nil, fmt.Errorf("dds: serve: %w", err)
	}
	table := cluster.UniformTable(cfg.Shards)
	if m != nil {
		// The spool's identity fields must match this process's: snapshots
		// taken under a different hash seed, sample size, or window describe
		// a different sampler and must not be laundered into this one.
		switch {
		case m.Seed != cfg.Seed:
			return nil, nil, nil, fmt.Errorf("dds: data dir %s was written under seed %d, this cluster runs seed %d", cfg.dataDir, m.Seed, cfg.Seed)
		case m.SampleSize != cfg.SampleSize:
			return nil, nil, nil, fmt.Errorf("dds: data dir %s was written under sample size %d, this cluster runs %d", cfg.dataDir, m.SampleSize, cfg.SampleSize)
		case m.Window != cfg.window:
			return nil, nil, nil, fmt.Errorf("dds: data dir %s was written under window %d, this cluster runs %d", cfg.dataDir, m.Window, cfg.window)
		}
		if table, err = cluster.ManifestTable(m); err != nil {
			return nil, nil, nil, fmt.Errorf("dds: serve: %w", err)
		}
	}
	router, err := cluster.NewRangeRouter(table, cfg.hasher())
	if err != nil {
		return nil, nil, nil, fmt.Errorf("dds: serve: %w", err)
	}
	srv, _, _, err := cluster.RestoreServer(cfg.Listen, sp, cfg.Shards, replica.Options{
		Replicas:      cfg.replicas,
		SyncInterval:  cfg.syncInterval,
		Lease:         cfg.lease,
		Codec:         cfg.wireCodec(),
		RouteHash:     router.RouteHash,
		SpoolInterval: cfg.snapInterval,
	}, newCoord)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("dds: serve: %w", err)
	}
	if m == nil {
		// Fresh dir: record the starting table so a crash before the first
		// reshard still restores into the right topology.
		if err := sp.WriteManifest(cluster.TableManifest(table, cfg.SampleSize, cfg.window, cfg.Seed)); err != nil {
			_ = srv.Close()
			return nil, nil, nil, fmt.Errorf("dds: serve: %w", err)
		}
	}
	return router, srv, sp, nil
}

// RestoreCluster starts a cluster from a point-in-time backup directory
// (Client.Backup) or a previous cluster's WithDataDir spool: every shard the
// recorded routing table routes to is warmed from its newest valid snapshot
// before serving. It is Serve with the directory armed — the restored
// cluster keeps spooling new snapshots into dir.
func RestoreCluster(ctx context.Context, dir string, cfg Config, opts ...Option) (*Cluster, error) {
	return Serve(ctx, cfg, append(append([]Option(nil), opts...), WithDataDir(dir))...)
}

// Groups returns the cluster's slot-indexed shard group addresses (member
// addresses in promotion order; nil entries for slots retired by
// resharding) — the value a client's Config.Coordinators takes.
func (cl *Cluster) Groups() [][]string { return cl.srv.GroupAddrs() }

// CoordinatorSpec renders the current groups as the flag-friendly string
// cmd/ddsnode accepts: shards comma-separated, replica-group members
// slash-separated, retired slots skipped.
func (cl *Cluster) CoordinatorSpec() string {
	var shardArgs []string
	for _, members := range cl.Groups() {
		if len(members) == 0 {
			continue
		}
		shardArgs = append(shardArgs, strings.Join(members, "/"))
	}
	return strings.Join(shardArgs, ",")
}

// AdminAddr returns the bound admin listener address ("" when none is
// serving).
func (cl *Cluster) AdminAddr() string {
	if cl.admin == nil {
		return ""
	}
	return cl.admin.Addr().String()
}

// Range is one contiguous routing-hash range of the cluster's partition:
// keys whose routing hash falls in [Lo, Hi) are owned by shard slot Slot.
// Hi == 0 means the range extends to 2^64.
type Range struct {
	Lo   uint64 `json:"lo"`
	Hi   uint64 `json:"hi"`
	Slot int    `json:"slot"`
}

// Ranges returns the cluster's current partition in routing-hash order,
// with the table version it is valid at.
func (cl *Cluster) Ranges() (version uint64, ranges []Range) {
	table := cl.rs.Table()
	version = table.Version
	for i, slot := range table.Slots {
		lo := table.Bounds[i]
		hi := uint64(0)
		if i+1 < len(table.Bounds) {
			hi = table.Bounds[i+1]
		}
		ranges = append(ranges, Range{Lo: lo, Hi: hi, Slot: slot})
	}
	return version, ranges
}

// Attach registers in-process clients with the reshard driver, so live
// splits and merges flip their routing tables cooperatively at their next
// operation boundary. Every unclosed in-process client ingesting into the
// cluster must be attached before resharding; external (cross-process)
// clients instead reconnect via the admin listener.
func (cl *Cluster) Attach(clients ...*Client) {
	for _, c := range clients {
		cl.rs.Register(c.sc)
	}
}

// ReshardReport records what one live reshard did and what it cost.
type ReshardReport struct {
	// Op is "split" or "merge".
	Op string `json:"op"`
	// Version is the routing-table version the plan published.
	Version uint64 `json:"version"`
	// Donor gave up the moved range; Successor received it.
	Donor     int `json:"donor"`
	Successor int `json:"successor"`
	// Lo and Hi delimit the moved range [Lo, Hi); Hi == 0 means 2^64.
	Lo uint64 `json:"lo"`
	Hi uint64 `json:"hi"`
	// WarmEntries and SettleEntries count the snapshot entries the
	// pre-cutover and post-cutover handoff frames carried — the entire data
	// motion of the reshard.
	WarmEntries   int `json:"warm_entries"`
	SettleEntries int `json:"settle_entries"`
	// CutoverStall is the window from publishing the new table until every
	// attached client had flipped; Total is the whole plan's wall-clock.
	CutoverStall time.Duration `json:"cutover_stall"`
	Total        time.Duration `json:"total"`
}

func toReport(rep *cluster.ReshardReport) *ReshardReport {
	if rep == nil {
		return nil
	}
	return &ReshardReport{
		Op: rep.Op, Version: rep.Version, Donor: rep.Donor, Successor: rep.Successor,
		Lo: rep.Lo, Hi: rep.Hi, WarmEntries: rep.WarmEntries, SettleEntries: rep.SettleEntries,
		CutoverStall: rep.CutoverStall, Total: rep.Total,
	}
}

// Split cuts shard slot's range at fraction frac of its width (0 < frac < 1;
// out-of-range values mean 0.5): a fresh shard group starts, warms from one
// snapshot handoff, attached clients flip live, and the donor prunes what it
// handed away. Blocks until the cutover settles.
func (cl *Cluster) Split(slot int, frac float64) (*ReshardReport, error) {
	mid, err := cl.rs.Table().SplitPoint(slot, frac)
	if err != nil {
		return nil, err
	}
	rep, err := cl.rs.Split(slot, mid)
	return toReport(rep), err
}

// MergeAt merges partition range rangeIdx (see Ranges) with the range to its
// right: the left range's shard absorbs the right one's range and state, and
// the absorbed group retires. Blocks until the cutover settles.
func (cl *Cluster) MergeAt(rangeIdx int) (*ReshardReport, error) {
	rep, err := cl.rs.MergeAt(rangeIdx)
	return toReport(rep), err
}

// RangeIndexOf returns the index (into Ranges) of the range owned by shard
// slot, or -1 if the slot owns none.
func (cl *Cluster) RangeIndexOf(slot int) int { return cl.rs.Table().RangeIndexOf(slot) }

// KillPrimary force-kills shard slot's current primary — listener and live
// connections included, so clients notice immediately — and returns the
// killed member's index. Clients fail over to the next live replica.
func (cl *Cluster) KillPrimary(slot int) (int, error) { return cl.srv.KillPrimary(slot) }

// PrimaryIndex returns the member index of the shard's current primary, or
// -1 for a retired or fully dead slot.
func (cl *Cluster) PrimaryIndex(slot int) int { return cl.srv.PrimaryIndex(slot) }

// Epochs returns the replication epoch of every member of the shard.
func (cl *Cluster) Epochs(slot int) []uint64 { return cl.srv.Epochs(slot) }

// SyncNow forces one immediate replication round on every live shard: after
// it returns, every replica holds its primary's exact current state.
func (cl *Cluster) SyncNow() error { return cl.srv.SyncNow() }

// Sample returns the cluster-wide merged sample from the live primaries:
// the exact global bottom-s in whole-stream mode, or the live window
// minimum at slot asOf in sliding-window mode (read from full shard
// snapshots, so a shard with a lagging slot clock cannot hide live
// candidates behind an expired minimum).
func (cl *Cluster) Sample(asOf int64) (Sample, error) {
	if cl.cfg.window > 0 {
		entries, err := cluster.QueryWindowGroups(cl.Groups(), asOf, cl.cfg.wireCodec())
		if err != nil {
			return nil, err
		}
		return toSample(entries), nil
	}
	samples, err := cl.srv.PrimarySamples()
	if err != nil {
		return nil, err
	}
	return toSample(cluster.Merge(cl.cfg.SampleSize, samples...)), nil
}

// Stats returns cluster-wide totals of offers received, reply messages
// sent, and queries answered.
func (cl *Cluster) Stats() (offers, replies, queries int) { return cl.srv.Stats() }

// WatcherStats is a running count of the autopilot watcher's decisions:
// scoring ticks taken, split and merge plans executed, ticks on which it
// declined to act, and the last plan's op and target slot. Zero-valued when
// WithAutoReshard is off.
type WatcherStats struct {
	Ticks   uint64 `json:"ticks"`
	Splits  uint64 `json:"splits"`
	Merges  uint64 `json:"merges"`
	Skipped uint64 `json:"skipped"`
	LastOp  string `json:"last_op,omitempty"`
	// LastSlot is the shard slot the last split targeted, or the surviving
	// slot of the last merge.
	LastSlot int `json:"last_slot,omitempty"`
}

// WatcherStats returns the autopilot watcher's decision counters, or nil
// when the cluster runs without WithAutoReshard.
func (cl *Cluster) WatcherStats() *WatcherStats {
	if cl.watcher == nil {
		return nil
	}
	ws := cl.watcher.Stats()
	return &WatcherStats{
		Ticks: ws.Ticks, Splits: ws.Splits, Merges: ws.Merges,
		Skipped: ws.Skipped, LastOp: ws.LastOp, LastSlot: ws.LastSlot,
	}
}

// Close stops the autopilot watcher, the admin listener, every shard member,
// and the replication loops.
func (cl *Cluster) Close() error {
	if cl.watcher != nil {
		cl.watcher.Stop()
	}
	if cl.admin != nil {
		_ = cl.admin.Close()
	}
	return cl.srv.Close()
}

// The admin protocol: one JSON request object per connection, answered by
// one JSON AdminStatus object. It is how cross-process tooling (cmd/ddsnode
// -role reshard) triggers live reshards and how joining clients (WithAdmin)
// fetch the live partition.

// adminRequest is one admin command. Op is "split", "merge", "table", or
// "stats".
type adminRequest struct {
	Op    string  `json:"op"`
	Slot  int     `json:"slot,omitempty"`
	Frac  float64 `json:"frac,omitempty"`
	Range int     `json:"range,omitempty"`
}

// AdminStatus is the admin listener's reply: the cluster's current routing
// state (and, for split/merge commands, the executed plan's report).
type AdminStatus struct {
	// Version, Bounds, and Slots are the live routing table: Bounds[i] is
	// the inclusive lower bound of the i-th range, owned by shard Slots[i].
	Version uint64   `json:"version"`
	Bounds  []uint64 `json:"bounds"`
	Slots   []int    `json:"slots"`
	// Groups is slot-indexed (nil entries for retired slots); Coordinator is
	// the same topology as a flag-friendly string.
	Groups      [][]string `json:"groups"`
	Coordinator string     `json:"coordinator"`
	// Report is the executed reshard's report (split and merge commands).
	Report *ReshardReport `json:"report,omitempty"`
	// Offers, Replies, Queries, and Metrics carry the cluster's ingest
	// totals and the serving process's metrics registry snapshot (stats
	// command).
	Offers  int              `json:"offers,omitempty"`
	Replies int              `json:"replies,omitempty"`
	Queries int              `json:"queries,omitempty"`
	Metrics *MetricsSnapshot `json:"metrics,omitempty"`
	// Watcher carries the autopilot watcher's decision counters (stats
	// command, only when the cluster runs WithAutoReshard).
	Watcher *WatcherStats `json:"watcher,omitempty"`
	// Error carries a command failure; the transport-level exchange still
	// succeeds so the caller sees the live table alongside it.
	Error string `json:"error,omitempty"`
}

// ServeAdmin starts the cluster's admin listener on addr and returns the
// bound address. Serve starts one automatically when WithAdmin is set.
func (cl *Cluster) ServeAdmin(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("dds: admin listen: %w", err)
	}
	cl.admin = ln
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go cl.handleAdmin(conn)
		}
	}()
	return ln.Addr().String(), nil
}

func (cl *Cluster) handleAdmin(conn net.Conn) {
	defer conn.Close()
	var req adminRequest
	if err := json.NewDecoder(conn).Decode(&req); err != nil {
		_ = json.NewEncoder(conn).Encode(AdminStatus{Error: "bad request: " + err.Error()})
		return
	}
	var resp AdminStatus
	switch req.Op {
	case "split":
		rep, err := cl.Split(req.Slot, req.Frac)
		if err != nil {
			resp.Error = err.Error()
		} else {
			resp.Report = rep
		}
	case "merge":
		rep, err := cl.MergeAt(req.Range)
		if err != nil {
			resp.Error = err.Error()
		} else {
			resp.Report = rep
		}
	case "stats":
		resp.Offers, resp.Replies, resp.Queries = cl.Stats()
		ms := Metrics()
		resp.Metrics = &ms
		resp.Watcher = cl.WatcherStats()
	case "table", "":
		// Read-only.
	default:
		resp.Error = fmt.Sprintf("unknown op %q (want split, merge, table, or stats)", req.Op)
	}
	table := cl.rs.Table()
	resp.Version, resp.Bounds, resp.Slots = table.Version, table.Bounds, table.Slots
	resp.Groups = cl.Groups()
	resp.Coordinator = cl.CoordinatorSpec()
	_ = json.NewEncoder(conn).Encode(resp)
}

// adminRoundTrip sends one command to an admin listener and decodes the
// reply, honoring the context's deadline on the connection.
func adminRoundTrip(ctx context.Context, admin string, req adminRequest) (*AdminStatus, error) {
	var d net.Dialer
	conn, err := d.DialContext(ctx, "tcp", admin)
	if err != nil {
		return nil, err
	}
	defer conn.Close()
	if deadline, ok := ctx.Deadline(); ok {
		_ = conn.SetDeadline(deadline)
	}
	if err := json.NewEncoder(conn).Encode(req); err != nil {
		return nil, err
	}
	var resp AdminStatus
	if err := json.NewDecoder(conn).Decode(&resp); err != nil {
		return nil, err
	}
	if resp.Error != "" {
		return &resp, fmt.Errorf("dds: admin: %s", resp.Error)
	}
	return &resp, nil
}

// AdminTable fetches a running cluster's current routing table and shard
// groups from its admin listener.
func AdminTable(ctx context.Context, admin string) (*AdminStatus, error) {
	return adminRoundTrip(ctx, admin, adminRequest{Op: "table"})
}

// AdminSplit triggers a live split of shard slot at fraction frac of its
// range via the cluster's admin listener, blocking until the cutover
// settles.
func AdminSplit(ctx context.Context, admin string, slot int, frac float64) (*AdminStatus, error) {
	return adminRoundTrip(ctx, admin, adminRequest{Op: "split", Slot: slot, Frac: frac})
}

// AdminMerge triggers a live merge of partition range rangeIdx with its
// right neighbour via the cluster's admin listener.
func AdminMerge(ctx context.Context, admin string, rangeIdx int) (*AdminStatus, error) {
	return adminRoundTrip(ctx, admin, adminRequest{Op: "merge", Range: rangeIdx})
}
