package dds_test

import (
	"context"
	"encoding/json"
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/dds"
	"repro/internal/core"
	"repro/internal/hashing"
)

// TestDurableServeRestoreRoundTrip drives durability through the public
// surface: a cluster with WithDataDir ingests, closes gracefully (the final
// spool barrier), and a second Serve against the same directory comes back
// with the identical sample — no client replay needed, because a graceful
// Close spools everything acknowledged.
func TestDurableServeRestoreRoundTrip(t *testing.T) {
	const (
		sampleSize = 16
		seed       = 20130501
	)
	ctx := context.Background()
	dir := t.TempDir()
	cl, err := dds.Serve(ctx, dds.Config{Listen: "127.0.0.1:0", Shards: 2, SampleSize: sampleSize, Seed: seed},
		dds.WithReplicas(1), dds.WithSyncInterval(20*time.Millisecond),
		dds.WithDataDir(dir), dds.WithSnapInterval(time.Hour), dds.WithSnapRetain(2))
	if err != nil {
		t.Fatal(err)
	}
	client, err := dds.Open(ctx, dds.Config{Coordinators: cl.Groups(), SampleSize: sampleSize, Seed: seed},
		dds.WithBatch(8))
	if err != nil {
		t.Fatal(err)
	}
	oracle := core.NewReference(sampleSize, hashing.NewMurmur2(seed))
	for i := 0; i < 800; i++ {
		key := fmt.Sprintf("key-%d", i)
		oracle.Observe(key)
		if err := client.Offer(key, 0); err != nil {
			t.Fatal(err)
		}
	}
	if err := client.Flush(); err != nil {
		t.Fatal(err)
	}
	want, err := json.Marshal(oracle.SampleKeys())
	if err != nil {
		t.Fatal(err)
	}
	if err := client.Close(); err != nil {
		t.Fatal(err)
	}
	if err := cl.Close(); err != nil { // graceful: final spool barrier
		t.Fatal(err)
	}

	cl2, err := dds.RestoreCluster(ctx, dir, dds.Config{Listen: "127.0.0.1:0", Shards: 2, SampleSize: sampleSize, Seed: seed},
		dds.WithReplicas(1), dds.WithSyncInterval(20*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer cl2.Close()
	sample, err := cl2.Sample(0)
	if err != nil {
		t.Fatal(err)
	}
	got, err := json.Marshal(sample.Keys())
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(want) {
		t.Fatalf("restored sample differs from pre-restart sample\n got: %s\nwant: %s", got, want)
	}

	// Identity fences: a process with a different seed, sample size, or
	// window must refuse the directory rather than launder its snapshots.
	if _, err := dds.RestoreCluster(ctx, dir, dds.Config{Listen: "127.0.0.1:0", Shards: 2, SampleSize: sampleSize, Seed: seed + 1}); err == nil || !strings.Contains(err.Error(), "seed") {
		t.Fatalf("restore under a different seed returned %v, want a seed mismatch error", err)
	}
	if _, err := dds.RestoreCluster(ctx, dir, dds.Config{Listen: "127.0.0.1:0", Shards: 2, SampleSize: sampleSize + 1, Seed: seed}); err == nil || !strings.Contains(err.Error(), "sample size") {
		t.Fatalf("restore under a different sample size returned %v, want a mismatch error", err)
	}
}

// TestBackupRestoreCluster pins the point-in-time backup path: a plain
// (non-durable) cluster is backed up through a client, and RestoreCluster
// brings up an independent cluster with the identical sample.
func TestBackupRestoreCluster(t *testing.T) {
	const (
		sampleSize = 16
		seed       = 20130501
	)
	ctx := context.Background()
	cl, err := dds.Serve(ctx, dds.Config{Listen: "127.0.0.1:0", Shards: 2, SampleSize: sampleSize, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	client, err := dds.Open(ctx, dds.Config{Coordinators: cl.Groups(), SampleSize: sampleSize, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	oracle := core.NewReference(sampleSize, hashing.NewMurmur2(seed))
	for i := 0; i < 500; i++ {
		key := fmt.Sprintf("item-%d", i)
		oracle.Observe(key)
		if err := client.Offer(key, 0); err != nil {
			t.Fatal(err)
		}
	}
	if err := client.Flush(); err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	if err := client.Backup(ctx, dir); err != nil {
		t.Fatal(err)
	}

	restored, err := dds.RestoreCluster(ctx, dir, dds.Config{Listen: "127.0.0.1:0", Shards: 2, SampleSize: sampleSize, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	defer restored.Close()
	sample, err := restored.Sample(0)
	if err != nil {
		t.Fatal(err)
	}
	wantKeys := oracle.SampleKeys()
	gotKeys := sample.Keys()
	if len(gotKeys) != len(wantKeys) {
		t.Fatalf("restored sample has %d keys, want %d", len(gotKeys), len(wantKeys))
	}
	for i := range wantKeys {
		if gotKeys[i] != wantKeys[i] {
			t.Fatalf("restored sample key %d = %q, want %q", i, gotKeys[i], wantKeys[i])
		}
	}
}

// TestDurableOptionValidation pins the new options' contradictory
// configurations to errors at the public surface.
func TestDurableOptionValidation(t *testing.T) {
	ctx := context.Background()
	if _, err := dds.Serve(ctx, dds.Config{Listen: "127.0.0.1:0"}, dds.WithSnapInterval(time.Second)); err == nil {
		t.Fatal("Serve with snapshot interval but no data dir succeeded")
	}
	if _, err := dds.Serve(ctx, dds.Config{Listen: "127.0.0.1:0"}, dds.WithSnapRetain(2)); err == nil {
		t.Fatal("Serve with snapshot retention but no data dir succeeded")
	}
	if _, err := dds.Serve(ctx, dds.Config{Listen: "127.0.0.1:0"}, dds.WithDataDir(t.TempDir()), dds.WithSnapInterval(-time.Second)); err == nil {
		t.Fatal("Serve with negative snapshot interval succeeded")
	}
	if _, err := dds.Serve(ctx, dds.Config{Listen: "127.0.0.1:0"}, dds.WithDataDir(t.TempDir()), dds.WithSnapRetain(-1)); err == nil {
		t.Fatal("Serve with negative snapshot retention succeeded")
	}
	if _, err := dds.Serve(ctx, dds.Config{Listen: "127.0.0.1:0"}, dds.WithChurnWeight(2)); err == nil {
		t.Fatal("Serve with churn weight but no autoreshard succeeded")
	}
}
