// Package dds is the public API of the distributed distinct sampler: a
// client for ingesting streams into (and querying) a sharded, replicated
// coordinator cluster, and an embeddable server for running one.
//
// The system maintains a uniform random sample of the distinct elements of a
// stream observed by many distributed sites, with communication logarithmic
// in the stream length (Tirthapura & Woodruff's distributed distinct
// sampling), either over the whole stream (infinite window) or over the last
// w time slots (sliding window, WithWindow). The coordinator-side state is a
// bottom-s sketch — tiny, exactly mergeable, and capturable as one versioned
// snapshot — which is what makes sharding exact, replication one frame, and
// resharding a live operation.
//
// A minimal deployment embeds both halves:
//
//	cluster, err := dds.Serve(ctx, dds.Config{Listen: "127.0.0.1:0", Shards: 2, SampleSize: 32})
//	client, err := dds.Open(ctx, dds.Config{Coordinators: cluster.Groups(), SampleSize: 32})
//	client.Offer("user-123", 0)
//	sample, err := client.Query(ctx)
//
// Clients and servers must agree on SampleSize, Seed, and the window; see
// Config. A Client is not safe for concurrent use — one goroutine (or
// external serialization) per Client, exactly like the underlying transport.
package dds

import (
	"context"
	"errors"
	"fmt"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/durable"
	"repro/internal/estimate"
	"repro/internal/hashing"
	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/replica"
	"repro/internal/sliding"
	"repro/internal/wire"
)

// DefaultSeed is the hash-function seed used when Config.Seed is zero. All
// nodes of one deployment must share a seed: the sample is defined by the
// hash function, and the shard partition is derived from it.
const DefaultSeed = 20130501

// DefaultSampleSize is the sample size used when Config.SampleSize is zero.
const DefaultSampleSize = 20

// Codec names a wire encoding.
type Codec string

// Supported wire codecs.
const (
	// CodecJSON is the human-readable newline-delimited JSON encoding.
	CodecJSON Codec = "json"
	// CodecBinary is the length-prefixed binary encoding — the
	// high-throughput choice, and the default.
	CodecBinary Codec = "binary"
)

// ErrDeposed reports an epoch fence: the coordinator a state push or sync
// targeted has been promoted past the sender's epoch, so the sender is (or
// was talking to) a deposed primary. Detect it with errors.Is.
var ErrDeposed = wire.ErrDeposed

// ErrStaleRoute reports a route-version fence: the peer has already applied
// a newer routing table than the operation was stamped with. Detect it with
// errors.Is.
var ErrStaleRoute = wire.ErrStaleRoute

// ErrLeaseLapsed reports a lease fence: the primary an offer targeted has
// not had its lease renewed by a replication quorum and refuses to ingest
// until renewal or promotion. Clients heal it automatically (WithRetry);
// detect it with errors.Is when driving the transport directly.
var ErrLeaseLapsed = wire.ErrLeaseLapsed

// ErrNotSnapshottable reports that a coordinator node refused a
// state-snapshot operation because it predates the Snapshot/Restore API
// (legacy simulation nodes; every built-in dds coordinator — the per-copy
// sliding-window one included — supports snapshots). Replica attach, backup
// (Client.Snapshot), and reshard handoffs all surface it; detect it with
// errors.Is.
var ErrNotSnapshottable = wire.ErrNotSnapshottable

// Config carries the identity and topology shared by Open, Query, and
// Serve. Transport and replication knobs are set through Options.
type Config struct {
	// Coordinators lists the cluster's shard groups, slot-indexed: one inner
	// slice per shard, each the shard's replica-group member addresses in
	// promotion order (primary first). Retired slots may be nil. Clients
	// dial every routed slot; WithAdmin can populate this (and the live
	// routing table) from a running cluster's admin listener instead.
	Coordinators [][]string
	// SiteID identifies this client among the k monitoring sites.
	SiteID int
	// SampleSize is s, the distinct-sample size — per shard and at query
	// time. Every node of a deployment must use the same value. Zero means
	// DefaultSampleSize.
	SampleSize int
	// Seed seeds the shared hash function. Zero means DefaultSeed.
	Seed uint64
	// Listen is the server's base listen address (Serve only). Shard c
	// member m binds port + c*(replicas+1) + m; port 0 gives every member an
	// ephemeral port.
	Listen string
	// Shards is the number of coordinator shards (Serve only). Zero means 1.
	Shards int

	codec        Codec
	window       int64
	batch        int
	pipeline     int
	replicas     int
	syncInterval time.Duration
	lease        time.Duration
	retryMax     int
	retryBase    time.Duration
	admin        string

	autoReshard   bool
	watchHigh     float64
	watchLow      float64
	watchCooldown time.Duration
	watchInterval time.Duration
	churnWeight   float64

	dataDir      string
	snapInterval time.Duration
	snapRetain   int

	traceSample    float64
	traceSampleSet bool
}

// Option configures transport, window, and replication behavior for Open,
// Query, and Serve.
type Option func(*Config)

// WithCodec selects the wire encoding (default CodecBinary).
func WithCodec(c Codec) Option { return func(cfg *Config) { cfg.codec = c } }

// WithWindow switches the deployment to the sliding-window protocol: the
// sample covers the distinct elements whose most recent arrival lies within
// the last slots time slots. Zero (the default) is the infinite window.
// Every node of a deployment must use the same window.
func WithWindow(slots int64) Option { return func(cfg *Config) { cfg.window = slots } }

// WithBatch makes the client buffer up to n offers per batch frame
// (default 1: one request/response per offer). Batching amortizes syscalls
// and encoding; slot boundaries still flush exactly.
func WithBatch(n int) Option { return func(cfg *Config) { cfg.batch = n } }

// WithPipelining lets up to depth batch frames stream per connection before
// their replies come back (credit-window backpressure; default 0: fully
// synchronous). Depth must be at least 2 to pipeline; try 8.
func WithPipelining(depth int) Option { return func(cfg *Config) { cfg.pipeline = depth } }

// WithReplicas gives every shard r warm replicas (Serve only; default 0).
// Each primary pushes its full state to its replicas as one snapshot frame
// per sync interval, and clients fail over to a replica when a primary dies.
func WithReplicas(r int) Option { return func(cfg *Config) { cfg.replicas = r } }

// WithSyncInterval sets how often each primary's state is pushed to its
// replicas (Serve only; default 100ms). It bounds replica staleness.
func WithSyncInterval(d time.Duration) Option { return func(cfg *Config) { cfg.syncInterval = d } }

// WithLease arms lease-based fencing (Serve only; default 0: disabled).
// Each primary holds a time-bounded lease renewed every sync round by a
// quorum of its replica group; a primary that cannot reach a quorum — it is
// partitioned, or deposed by a promotion it never saw — stops accepting
// offers with ErrLeaseLapsed when the lease runs down, instead of ingesting
// into state nobody replicates. The lease must exceed the sync interval
// (a healthy primary renews once per round) and requires WithReplicas.
func WithLease(d time.Duration) Option { return func(cfg *Config) { cfg.lease = d } }

// WithRetry sets the client's recovery policy (Open only): at most max
// retries per operation against a lease-fenced primary, backing off
// exponentially from base with jitter before each, then promoting the next
// replica-group member. Zeros take the defaults (5 retries from 5ms);
// max < 0 disables lease waiting, so the first fence triggers promotion.
func WithRetry(max int, base time.Duration) Option {
	return func(cfg *Config) { cfg.retryMax = max; cfg.retryBase = base }
}

// WithTraceSampling sets the process-wide trace sample rate: the fraction of
// ingest batches (and control-plane operations) that record a full
// cross-plane span timeline, browsable at the metrics listener's
// /debug/traces. 0 (the default) disables tracing — the decision then costs
// one atomic load and the unsampled hot path allocates nothing. 1 traces
// everything; production deployments typically run 0.01 or lower. The rate
// is a process-wide setting shared by every Client and Cluster in the
// process; the last Open or Serve that used this option wins.
func WithTraceSampling(rate float64) Option {
	return func(cfg *Config) { cfg.traceSample = rate; cfg.traceSampleSet = true }
}

// WithAutoReshard arms autopilot resharding (Serve only; default off): a
// background watcher scores per-shard load shares from the live metrics
// registry's counter deltas and executes split/merge plans through the
// reshard driver — with hysteresis, so noisy load cannot thrash the table.
// A shard whose smoothed load share sustains above high is split; the
// coldest adjacent range pair whose combined share sustains below low is
// merged; after any plan the watcher stands down for cooldown and relearns
// the distribution from scratch. Zeros take the defaults (high 0.65, low
// 0.15, cooldown 8 ticks); explicit values must satisfy 0 < low < high < 1.
// The watcher observes decisions in dds_watcher_plans_total{op=...} and
// dds_watcher_skipped_total{reason=...}, and reports through the admin stats
// verb (Client.Stats / AdminStats).
func WithAutoReshard(high, low float64, cooldown time.Duration) Option {
	return func(cfg *Config) {
		cfg.autoReshard = true
		cfg.watchHigh = high
		cfg.watchLow = low
		cfg.watchCooldown = cooldown
	}
}

// WithWatchInterval sets the autopilot watcher's scoring tick (Serve only;
// default 250ms). Requires WithAutoReshard. Shorter ticks react faster but
// score noisier intervals; the EWMA and sustain hysteresis absorb most of
// the noise either way.
func WithWatchInterval(d time.Duration) Option {
	return func(cfg *Config) { cfg.watchInterval = d }
}

// WithChurnWeight scales sample-churn counter deltas relative to offer
// deltas in the autopilot's load scoring (Serve only; requires
// WithAutoReshard). Offers measure arrival pressure; churn measures how much
// of it actually reshapes the sketch. Weights above 1 bias splits toward
// shards whose samples are actively churning; negative ignores churn
// entirely; 0 (the default) keeps the historical equal fold.
func WithChurnWeight(w float64) Option { return func(cfg *Config) { cfg.churnWeight = w } }

// WithDataDir arms the durability subsystem (Serve only): every shard
// primary spools atomic, self-describing snapshots of its full state into
// dir on an interval and at natural barriers (promotion, reshard cutover,
// graceful Close), and a Serve against a non-empty dir cold-starts by
// restoring the newest valid snapshot per shard and rejoining under the
// persisted route table. Corrupt or torn files are skipped, never fatal.
// The directory must not be shared by two live clusters.
func WithDataDir(dir string) Option { return func(cfg *Config) { cfg.dataDir = dir } }

// WithSnapInterval sets the background snapshot cadence (Serve only; default
// 1s; requires WithDataDir). A shard that saw no offers and no promotion
// since its last snapshot spools nothing, so an idle cluster writes nothing.
// The interval bounds the power-loss window: offers acknowledged after the
// last spool are lost on an ungraceful full-cluster kill and must be
// replayed by clients, exactly like a failover's unacked window.
func WithSnapInterval(d time.Duration) Option { return func(cfg *Config) { cfg.snapInterval = d } }

// WithSnapRetain keeps the newest k snapshots per shard, pruning older ones
// after each spool (Serve only; default 3; requires WithDataDir). Retention
// beyond 1 is what lets restore fall back past a torn newest file.
func WithSnapRetain(k int) Option { return func(cfg *Config) { cfg.snapRetain = k } }

// WithAdmin names a cluster admin listener. For Serve it is the address to
// serve resharding commands on; for Open and Query it is where to fetch the
// live routing table and shard groups, replacing Config.Coordinators — a
// client joining after a reshard then adopts the real partition instead of
// assuming the uniform one.
func WithAdmin(addr string) Option { return func(cfg *Config) { cfg.admin = addr } }

// Entry is one element of a sample: the element's key, its unit hash under
// the deployment's shared hash function, and — in sliding-window mode — the
// last slot at which it is still inside the window.
type Entry struct {
	Key    string  `json:"key"`
	Hash   float64 `json:"hash"`
	Expiry int64   `json:"expiry,omitempty"`
}

// Sample is a distinct sample in ascending hash order.
type Sample []Entry

// Keys returns the sampled keys in ascending hash order.
func (s Sample) Keys() []string {
	keys := make([]string, len(s))
	for i, e := range s {
		keys[i] = e.Key
	}
	return keys
}

// Estimate is a distinct-count estimate with a ~95% confidence interval.
type Estimate struct {
	// Count is the estimated number of distinct elements.
	Count float64 `json:"count"`
	// Low and High bound the ~95% confidence interval.
	Low  float64 `json:"low"`
	High float64 `json:"high"`
	// Exact reports that the sample held the whole distinct population, so
	// Count is exact rather than estimated.
	Exact bool `json:"exact,omitempty"`
}

// ShardState is one shard's full coordinator state, captured as a versioned,
// self-describing snapshot blob (the same encoding replication and reshard
// handoff frames carry). It is the backup primitive: the blob round-trips
// the shard's entire protocol state, sliding-window candidate stores
// included.
type ShardState struct {
	// Slot is the shard's stable slot index.
	Slot int `json:"slot"`
	// Data is the encoded snapshot.
	Data []byte `json:"data"`
}

// normalize applies defaults and options, returning an error for
// contradictory settings.
func (cfg Config) normalize(opts []Option) (Config, error) {
	for _, opt := range opts {
		opt(&cfg)
	}
	if cfg.SampleSize == 0 {
		cfg.SampleSize = DefaultSampleSize
	}
	if cfg.Seed == 0 {
		cfg.Seed = DefaultSeed
	}
	if cfg.codec == "" {
		cfg.codec = CodecBinary
	}
	if cfg.batch == 0 {
		cfg.batch = 1
	}
	if cfg.Shards == 0 {
		cfg.Shards = 1
	}
	if cfg.syncInterval == 0 {
		cfg.syncInterval = 100 * time.Millisecond
	}
	if cfg.autoReshard {
		if cfg.watchHigh == 0 {
			cfg.watchHigh = 0.65
		}
		if cfg.watchLow == 0 {
			cfg.watchLow = 0.15
		}
	}
	if cfg.dataDir != "" {
		if cfg.snapInterval == 0 {
			cfg.snapInterval = replica.DefaultSpoolInterval
		}
		if cfg.snapRetain == 0 {
			cfg.snapRetain = durable.DefaultRetain
		}
	}
	switch {
	case cfg.SampleSize < 1:
		return cfg, fmt.Errorf("dds: sample size %d must be at least 1", cfg.SampleSize)
	case cfg.window < 0:
		return cfg, fmt.Errorf("dds: window %d must not be negative", cfg.window)
	case cfg.batch < 1:
		return cfg, fmt.Errorf("dds: batch size %d must be at least 1", cfg.batch)
	case cfg.pipeline < 0 || cfg.pipeline == 1:
		return cfg, fmt.Errorf("dds: pipelining depth %d is not a pipeline; use 0 to disable or at least 2 to stream", cfg.pipeline)
	case cfg.replicas < 0:
		return cfg, fmt.Errorf("dds: replica count %d must not be negative", cfg.replicas)
	case cfg.Shards < 1:
		return cfg, fmt.Errorf("dds: shard count %d must be at least 1", cfg.Shards)
	case cfg.lease < 0:
		return cfg, fmt.Errorf("dds: lease %v must not be negative", cfg.lease)
	case cfg.lease > 0 && cfg.lease <= cfg.syncInterval:
		return cfg, fmt.Errorf("dds: lease %v must exceed the sync interval %v (a healthy primary renews once per round)", cfg.lease, cfg.syncInterval)
	case cfg.lease > 0 && cfg.replicas < 1:
		return cfg, fmt.Errorf("dds: lease fencing needs replicas (the lease is renewed by quorum acks); set WithReplicas")
	case cfg.retryBase < 0:
		return cfg, fmt.Errorf("dds: retry base %v must not be negative", cfg.retryBase)
	case cfg.traceSample < 0 || cfg.traceSample > 1:
		return cfg, fmt.Errorf("dds: trace sample rate %v must be in [0, 1]", cfg.traceSample)
	case !cfg.autoReshard && (cfg.watchHigh != 0 || cfg.watchLow != 0 || cfg.watchCooldown != 0 || cfg.watchInterval != 0 || cfg.churnWeight != 0):
		return cfg, errors.New("dds: watcher tuning set without WithAutoReshard")
	case cfg.dataDir == "" && (cfg.snapInterval != 0 || cfg.snapRetain != 0):
		return cfg, errors.New("dds: snapshot tuning set without WithDataDir")
	case cfg.snapInterval < 0:
		return cfg, fmt.Errorf("dds: snapshot interval %v must not be negative", cfg.snapInterval)
	case cfg.snapRetain < 0:
		return cfg, fmt.Errorf("dds: snapshot retention %d must not be negative", cfg.snapRetain)
	case cfg.autoReshard && (cfg.watchHigh >= 1 || cfg.watchHigh < 0 || cfg.watchLow < 0):
		return cfg, fmt.Errorf("dds: autoreshard watermarks high=%v low=%v must lie in (0, 1)", cfg.watchHigh, cfg.watchLow)
	case cfg.autoReshard && cfg.watchLow >= cfg.watchHigh:
		return cfg, fmt.Errorf("dds: autoreshard low watermark %v must be below the high watermark %v", cfg.watchLow, cfg.watchHigh)
	case cfg.autoReshard && (cfg.watchCooldown < 0 || cfg.watchInterval < 0):
		return cfg, fmt.Errorf("dds: autoreshard cooldown %v and interval %v must not be negative", cfg.watchCooldown, cfg.watchInterval)
	}
	if _, err := wire.ParseCodec(string(cfg.codec)); err != nil {
		return cfg, fmt.Errorf("dds: unknown codec %q (want %q or %q)", cfg.codec, CodecJSON, CodecBinary)
	}
	return cfg, nil
}

func (cfg *Config) wireCodec() wire.Codec {
	c, _ := wire.ParseCodec(string(cfg.codec))
	return c
}

func (cfg *Config) wireOptions() wire.Options {
	return wire.Options{
		Codec:     cfg.wireCodec(),
		BatchSize: cfg.batch,
		Window:    cfg.pipeline,
		RetryMax:  cfg.retryMax,
		RetryBase: cfg.retryBase,
	}
}

func (cfg *Config) hasher() hashing.UnitHasher { return hashing.NewMurmur2(cfg.Seed) }

// resolveTopology returns the routing table and groups a client should dial:
// the admin listener's live view when WithAdmin is set, Config.Coordinators
// under the uniform partition otherwise.
func resolveTopology(ctx context.Context, cfg *Config) (*cluster.ShardRouter, [][]string, error) {
	hasher := cfg.hasher()
	if cfg.admin != "" {
		status, err := adminRoundTrip(ctx, cfg.admin, adminRequest{Op: "table"})
		if err != nil {
			return nil, nil, fmt.Errorf("dds: fetch topology from admin %s: %w", cfg.admin, err)
		}
		table := cluster.RangeTable{Version: status.Version, Bounds: status.Bounds, Slots: status.Slots}
		router, err := cluster.NewRangeRouter(table, hasher)
		if err != nil {
			return nil, nil, fmt.Errorf("dds: admin topology: %w", err)
		}
		return router, status.Groups, nil
	}
	if len(cfg.Coordinators) == 0 {
		return nil, nil, errors.New("dds: no coordinators configured (set Config.Coordinators or WithAdmin)")
	}
	return cluster.NewShardRouter(len(cfg.Coordinators), hasher), cfg.Coordinators, nil
}

// Client ingests one site's stream into the cluster and answers queries
// against it. It is not safe for concurrent use.
type Client struct {
	cfg    Config
	router *cluster.ShardRouter
	sc     *cluster.SiteClient
	// lastSlot tracks the newest slot this client has seen, the clock
	// sliding-window queries evaluate expiry against.
	lastSlot int64
	closed   bool
}

// Open connects a site client to every shard of the cluster and returns it.
// The context bounds the dial phase: cancellation abandons the connection
// attempt (any connections already made are closed in the background).
func Open(ctx context.Context, cfg Config, opts ...Option) (*Client, error) {
	cfg, err := cfg.normalize(opts)
	if err != nil {
		return nil, err
	}
	if cfg.traceSampleSet {
		obs.SetTraceSampleRate(cfg.traceSample)
	}
	router, groups, err := resolveTopology(ctx, &cfg)
	if err != nil {
		return nil, err
	}
	hasher := cfg.hasher()
	newSite := func(shard int) netsim.SiteNode {
		if cfg.window > 0 {
			return sliding.NewSite(cfg.SiteID, hasher, cfg.window, uint64(cfg.SiteID*1000+shard)+1)
		}
		return core.NewInfiniteSite(cfg.SiteID, hasher)
	}
	type dialed struct {
		sc  *cluster.SiteClient
		err error
	}
	done := make(chan dialed, 1)
	go func() {
		sc, err := cluster.DialGroups(groups, router, newSite, cfg.wireOptions())
		done <- dialed{sc, err}
	}()
	select {
	case d := <-done:
		if d.err != nil {
			return nil, fmt.Errorf("dds: open: %w", d.err)
		}
		return &Client{cfg: cfg, router: router, sc: d.sc}, nil
	case <-ctx.Done():
		go func() {
			if d := <-done; d.err == nil {
				_ = d.sc.Close()
			}
		}()
		return nil, ctx.Err()
	}
}

// Offer feeds one element observation at the given time slot to the
// sampler. The protocol decides whether anything is sent: most offers cost
// no communication at all.
func (c *Client) Offer(key string, slot int64) error {
	if slot > c.lastSlot {
		c.lastSlot = slot
	}
	return c.sc.Observe(key, slot)
}

// EndSlot closes time slot slot: buffered offers flush, and sliding-window
// sites run their expiry-driven promotions. Call it once per slot boundary
// in sliding-window mode; it is harmless (a flush) otherwise.
func (c *Client) EndSlot(slot int64) error {
	if slot > c.lastSlot {
		c.lastSlot = slot
	}
	return c.sc.EndSlot(slot)
}

// Flush ships every buffered offer and drains the pipeline window. On
// return, every offer this client ever accepted has been acknowledged by a
// live coordinator.
func (c *Client) Flush() error { return c.sc.Flush() }

// Query returns the cluster-wide distinct sample: the per-shard samples
// merged into the exact global bottom-s (or, in sliding-window mode, the
// window sample — the minimum-hash element currently inside the window,
// read from each shard's full snapshot so a shard with a lagging slot clock
// cannot hide live candidates behind an expired minimum). Queries follow
// reshards: they target the groups the client currently routes to.
func (c *Client) Query(ctx context.Context) (Sample, error) {
	groups := c.sc.Groups()
	if c.cfg.window > 0 {
		entries, err := queryWindowCtx(ctx, groups, c.lastSlot, c.cfg.wireCodec())
		if err != nil {
			return nil, err
		}
		return toSample(entries), nil
	}
	entries, err := queryGroupsCtx(ctx, groups, c.cfg.SampleSize, c.cfg.wireCodec())
	if err != nil {
		return nil, err
	}
	return toSample(entries), nil
}

// Estimate derives the KMV distinct-count estimate from a whole-stream
// sample of the given size: the number of distinct elements in the sampled
// stream, with a ~95% confidence interval. The estimate is a pure function
// of the sample — no further cluster round trips.
func (s Sample) Estimate(sampleSize int) (Estimate, error) {
	if sampleSize < 1 {
		return Estimate{}, fmt.Errorf("dds: sample size %d must be at least 1", sampleSize)
	}
	entries := make([]netsim.SampleEntry, len(s))
	for i, e := range s {
		entries[i] = netsim.SampleEntry{Key: e.Key, Hash: e.Hash, Expiry: e.Expiry}
	}
	iv, err := estimate.DistinctCount(entries, sampleSize, cluster.MergedThreshold(entries, sampleSize))
	if err != nil {
		return Estimate{}, fmt.Errorf("dds: estimate: %w", err)
	}
	return Estimate{Count: iv.Estimate, Low: iv.Low, High: iv.High, Exact: len(entries) < sampleSize}, nil
}

// Estimate returns the estimated number of distinct elements in the stream
// (whole-stream mode only), with a ~95% confidence interval: one Query plus
// the sample-local Sample.Estimate. When the population is smaller than the
// sample size the count is exact.
func (c *Client) Estimate(ctx context.Context) (Estimate, error) {
	if c.cfg.window > 0 {
		return Estimate{}, errors.New("dds: distinct-count estimation applies to the infinite window only")
	}
	sample, err := c.Query(ctx)
	if err != nil {
		return Estimate{}, err
	}
	return sample.Estimate(c.cfg.SampleSize)
}

// Snapshot captures every live shard's full coordinator state as one
// versioned snapshot blob per shard — the whole cluster's protocol state,
// sliding-window candidate stores included. The blobs are what replication
// and handoff frames carry; persist them as a backup.
func (c *Client) Snapshot(ctx context.Context) ([]ShardState, error) {
	groups := c.sc.Groups()
	codec := c.cfg.wireCodec()
	var out []ShardState
	for slot, members := range groups {
		if len(members) == 0 {
			continue // retired by resharding
		}
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		st, err := snapshotGroup(ctx, members, codec)
		if err != nil {
			return nil, fmt.Errorf("dds: snapshot shard %d: %w", slot, err)
		}
		out = append(out, ShardState{Slot: slot, Data: core.EncodeState(st)})
	}
	return out, nil
}

// Backup captures a point-in-time backup of the whole cluster into dir: one
// snapshot file per live shard (the same atomic, checksummed format the
// durability spool writes) plus a manifest recording the routing table the
// shards were captured under. The directory restores with RestoreCluster —
// or by pointing any Serve at it via WithDataDir.
//
// Shards are snapshotted one at a time, not at one instant: keys offered
// while the backup walks the shards may or may not be captured, exactly like
// the spool window. Everything acknowledged before Backup started is in.
func (c *Client) Backup(ctx context.Context, dir string) error {
	sp, err := durable.Open(dir, durable.DefaultRetain)
	if err != nil {
		return fmt.Errorf("dds: backup: %w", err)
	}
	table := c.sc.Table()
	codec := c.cfg.wireCodec()
	for slot, members := range c.sc.Groups() {
		if len(members) == 0 {
			continue // retired by resharding
		}
		if err := ctx.Err(); err != nil {
			return err
		}
		st, err := snapshotGroup(ctx, members, codec)
		if err != nil {
			return fmt.Errorf("dds: backup shard %d: %w", slot, err)
		}
		if _, err := sp.WriteSnapshot(slot, 0, table.Version, st); err != nil {
			return fmt.Errorf("dds: backup shard %d: %w", slot, err)
		}
	}
	// The manifest is the backup's commit point: a restore ignores snapshot
	// files its manifest's table does not route to.
	if err := sp.WriteManifest(cluster.TableManifest(table, c.cfg.SampleSize, c.cfg.window, c.cfg.Seed)); err != nil {
		return fmt.Errorf("dds: backup: %w", err)
	}
	return nil
}

// Close flushes buffered offers, drains the pipeline, and closes every
// shard connection. A clean Close means every offer reached a live
// coordinator.
func (c *Client) Close() error {
	if c.closed {
		return nil
	}
	c.closed = true
	return c.sc.Close()
}

// Query answers a one-shot cluster query without opening an ingest client:
// the merged distinct sample across the configured (or admin-fetched) shard
// groups. In sliding-window mode, pass the current slot as asOf to evaluate
// expiry; whole-stream callers use Query(ctx, cfg).
func Query(ctx context.Context, cfg Config, opts ...Option) (Sample, error) {
	return QueryAsOf(ctx, 0, cfg, opts...)
}

// QueryAsOf is Query with an explicit slot clock for sliding-window
// deployments: only elements still live at slot asOf count.
func QueryAsOf(ctx context.Context, asOf int64, cfg Config, opts ...Option) (Sample, error) {
	cfg, err := cfg.normalize(opts)
	if err != nil {
		return nil, err
	}
	_, groups, err := resolveTopology(ctx, &cfg)
	if err != nil {
		return nil, err
	}
	if cfg.window > 0 {
		entries, err := queryWindowCtx(ctx, groups, asOf, cfg.wireCodec())
		if err != nil {
			return nil, err
		}
		return toSample(entries), nil
	}
	entries, err := queryGroupsCtx(ctx, groups, cfg.SampleSize, cfg.wireCodec())
	if err != nil {
		return nil, err
	}
	return toSample(entries), nil
}

// queryGroupsCtx runs the cluster query under a context: cancellation
// abandons the wait (the underlying fan-out finishes in the background).
func queryGroupsCtx(ctx context.Context, groups [][]string, size int, codec wire.Codec) ([]netsim.SampleEntry, error) {
	type result struct {
		entries []netsim.SampleEntry
		err     error
	}
	done := make(chan result, 1)
	go func() {
		entries, err := cluster.QueryGroups(groups, size, codec)
		done <- result{entries, err}
	}()
	select {
	case r := <-done:
		if r.err != nil {
			return nil, fmt.Errorf("dds: query: %w", r.err)
		}
		return r.entries, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// queryWindowCtx runs the snapshot-based window query under a context (see
// queryGroupsCtx for the cancellation contract).
func queryWindowCtx(ctx context.Context, groups [][]string, asOf int64, codec wire.Codec) ([]netsim.SampleEntry, error) {
	type result struct {
		entries []netsim.SampleEntry
		err     error
	}
	done := make(chan result, 1)
	go func() {
		entries, err := cluster.QueryWindowGroups(groups, asOf, codec)
		done <- result{entries, err}
	}()
	select {
	case r := <-done:
		if r.err != nil {
			return nil, fmt.Errorf("dds: query: %w", r.err)
		}
		return r.entries, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// snapshotGroup fetches one shard's state via the shared primary-resolution
// walk: the current primary (probed by epoch) preferred, any live member —
// whose state is at most one sync interval stale — as fallback.
func snapshotGroup(ctx context.Context, members []string, codec wire.Codec) (core.State, error) {
	if err := ctx.Err(); err != nil {
		return core.State{}, err
	}
	var st core.State
	err := cluster.WithGroupPrimary(members, codec, func(addr string) error {
		s, err := wire.SnapshotAddr(addr, codec)
		if err == nil {
			st = s
		}
		return err
	})
	return st, err
}

func toSample(entries []netsim.SampleEntry) Sample {
	out := make(Sample, len(entries))
	for i, e := range entries {
		out[i] = Entry{Key: e.Key, Hash: e.Hash, Expiry: e.Expiry}
	}
	return out
}
