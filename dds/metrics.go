package dds

import (
	"context"
	"errors"
	"net/http"

	"repro/internal/obs"
)

// CounterStat is one monotone counter's value at snapshot time.
type CounterStat struct {
	Name  string `json:"name"`
	Value uint64 `json:"value"`
}

// GaugeStat is one gauge's value at snapshot time.
type GaugeStat struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

// HistogramBucket is one cumulative histogram bucket: Count observations at
// most UpperBound (the +Inf bucket is implied by HistogramStat.Count).
type HistogramBucket struct {
	UpperBound int64  `json:"le"`
	Count      uint64 `json:"count"`
}

// HistogramStat is one histogram's state at snapshot time.
type HistogramStat struct {
	Name    string            `json:"name"`
	Count   uint64            `json:"count"`
	Sum     int64             `json:"sum"`
	Buckets []HistogramBucket `json:"buckets,omitempty"`
}

// Mean returns the mean observed value (0 when empty).
func (h HistogramStat) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return float64(h.Sum) / float64(h.Count)
}

// MetricsSnapshot is a point-in-time copy of a node's metrics registry,
// sorted by instrument name. Instrument names follow the Prometheus
// convention with any labels baked into the name (for the full catalog see
// the README's Observability section).
type MetricsSnapshot struct {
	Counters   []CounterStat   `json:"counters"`
	Gauges     []GaugeStat     `json:"gauges"`
	Histograms []HistogramStat `json:"histograms"`
}

// Counter returns the named counter's value (0 when absent).
func (m MetricsSnapshot) Counter(name string) uint64 {
	for _, c := range m.Counters {
		if c.Name == name {
			return c.Value
		}
	}
	return 0
}

// Gauge returns the named gauge's value (0 when absent).
func (m MetricsSnapshot) Gauge(name string) int64 {
	for _, g := range m.Gauges {
		if g.Name == name {
			return g.Value
		}
	}
	return 0
}

// Histogram returns the named histogram's state (nil when absent).
func (m MetricsSnapshot) Histogram(name string) *HistogramStat {
	for i := range m.Histograms {
		if m.Histograms[i].Name == name {
			return &m.Histograms[i]
		}
	}
	return nil
}

func fromObsSnapshot(s obs.Snapshot) MetricsSnapshot {
	out := MetricsSnapshot{
		Counters:   make([]CounterStat, len(s.Counters)),
		Gauges:     make([]GaugeStat, len(s.Gauges)),
		Histograms: make([]HistogramStat, len(s.Histograms)),
	}
	for i, c := range s.Counters {
		out.Counters[i] = CounterStat{Name: c.Name, Value: c.Value}
	}
	for i, g := range s.Gauges {
		out.Gauges[i] = GaugeStat{Name: g.Name, Value: g.Value}
	}
	for i, h := range s.Histograms {
		hs := HistogramStat{Name: h.Name, Count: h.Count, Sum: h.Sum, Buckets: make([]HistogramBucket, len(h.Buckets))}
		for j, b := range h.Buckets {
			hs.Buckets[j] = HistogramBucket{UpperBound: b.UpperBound, Count: b.Count}
		}
		out.Histograms[i] = hs
	}
	return out
}

// Metrics returns a snapshot of this process's metrics registry: every
// instrument the wire, replication, and cluster layers have registered, with
// their current values. An embedded Cluster and its in-process clients share
// one registry, so for the embedded deployment this is the cluster-wide view.
func Metrics() MetricsSnapshot { return fromObsSnapshot(obs.Default().Snapshot()) }

// MetricsHandler returns the live-introspection HTTP handler: /metrics
// (Prometheus text format), /debug/vars (expvar), /debug/events (the
// control-plane event log as JSON), and /debug/pprof. cmd/ddsnode serves it
// on -metrics; embedders can mount it on their own server.
func MetricsHandler() http.Handler { return obs.Handler() }

// ClusterStats is the cluster-wide stats report of a running deployment:
// protocol totals plus the serving process's full metrics snapshot.
type ClusterStats struct {
	// Offers, Replies, and Queries are totals over every shard member ever
	// started (replayed offers count at both the dead primary and its
	// successor).
	Offers  int `json:"offers"`
	Replies int `json:"replies"`
	Queries int `json:"queries"`
	// Metrics is the serving process's registry snapshot.
	Metrics MetricsSnapshot `json:"metrics"`
	// Watcher is the autopilot watcher's decision counters; nil when the
	// cluster runs without WithAutoReshard.
	Watcher *WatcherStats `json:"watcher,omitempty"`
}

// Stats fetches the cluster-wide stats — ingest totals and the serving
// process's metrics snapshot — via the cluster's admin listener. The client
// must have been opened WithAdmin; in-process embedders can call Metrics()
// and Cluster.Stats directly instead.
func (c *Client) Stats(ctx context.Context) (*ClusterStats, error) {
	if c.cfg.admin == "" {
		return nil, errors.New("dds: Stats needs an admin listener (open the client WithAdmin)")
	}
	status, err := AdminStats(ctx, c.cfg.admin)
	if err != nil {
		return nil, err
	}
	stats := &ClusterStats{Offers: status.Offers, Replies: status.Replies, Queries: status.Queries}
	if status.Metrics != nil {
		stats.Metrics = *status.Metrics
	}
	stats.Watcher = status.Watcher
	return stats, nil
}

// AdminStats fetches a running cluster's ingest totals and metrics snapshot
// from its admin listener (the "stats" admin verb).
func AdminStats(ctx context.Context, admin string) (*AdminStatus, error) {
	return adminRoundTrip(ctx, admin, adminRequest{Op: "stats"})
}
